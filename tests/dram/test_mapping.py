"""Address scrambling: constructions, permutations, distance sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import (AddressMapping, boustrophedon_path, find_step_path,
                        identity_mapping, pair_block_path,
                        path_step_magnitudes, residue_interleaved_path,
                        vendor)


def _is_permutation(path, length):
    return sorted(path) == list(range(length))


class TestStepPathGenerators:
    def test_boustrophedon_is_permutation(self):
        path = boustrophedon_path(256, block=64)
        assert _is_permutation(path, 256)

    def test_boustrophedon_magnitudes(self):
        path = boustrophedon_path(256, block=64)
        assert set(path_step_magnitudes(path)) == {1, 64}

    def test_boustrophedon_rejects_odd_blocks(self):
        with pytest.raises(ValueError):
            boustrophedon_path(192, block=64)

    def test_pair_block_is_permutation(self):
        path = pair_block_path(128, half=64)
        assert _is_permutation(path, 128)

    def test_pair_block_magnitudes_and_balance(self):
        path = pair_block_path(128, half=64)
        mags = path_step_magnitudes(path)
        assert set(mags) == {1, 64}
        # The long step occurs on half the moves - that frequency is
        # what makes +-64 survive PARBOR's ranking.
        assert mags[64] >= len(path) // 3

    def test_pair_block_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            pair_block_path(100, half=64)
        with pytest.raises(ValueError):
            pair_block_path(126, half=63)

    def test_residue_interleave_is_permutation(self):
        path = residue_interleaved_path(1024, stride=8)
        assert _is_permutation(path, 1024)

    def test_residue_interleave_run_magnitudes(self):
        path = residue_interleaved_path(1024, stride=8)
        run = 1024 // 8
        mags = set()
        for c in range(8):
            mags |= set(path_step_magnitudes(path[c * run:(c + 1) * run]))
        assert mags == {8, 16, 48}

    def test_residue_interleave_balanced_usage(self):
        path = residue_interleaved_path(1024, stride=8)
        run = 1024 // 8
        counts = {8: 0, 16: 0, 48: 0}
        for c in range(8):
            for m, n in path_step_magnitudes(
                    path[c * run:(c + 1) * run]).items():
                counts[m] += n
        # Balanced pattern: no magnitude rarer than half the most
        # common one (ranking survival requires frequency).
        assert min(counts.values()) >= max(counts.values()) // 2

    def test_residue_interleave_rejects_misaligned(self):
        with pytest.raises(ValueError):
            residue_interleaved_path(1001, stride=8)


class TestFindStepPath:
    def test_vendor_c_steps(self):
        path = find_step_path(512, steps=(16, -16, 33, -33, 49, -49))
        assert _is_permutation(path, 512)
        assert set(path_step_magnitudes(path)) == {16, 33, 49}

    def test_balanced_magnitude_usage(self):
        path = find_step_path(512, steps=(16, -16, 33, -33, 49, -49))
        mags = path_step_magnitudes(path)
        assert min(mags.values()) >= max(mags.values()) // 3

    def test_impossible_set_raises(self):
        # Steps of magnitude 2 can never leave the even residue class.
        with pytest.raises(ValueError):
            find_step_path(8, steps=(2, -2))

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            find_step_path(8, steps=(0, 1))

    @given(st.sampled_from([16, 32, 64, 128]),
           st.sampled_from([(1, 3), (1, 5), (2, 3), (3, 4)]))
    @settings(max_examples=20, deadline=None)
    def test_random_small_sets_are_permutations(self, length, mags):
        steps = [s for m in mags for s in (m, -m)]
        path = find_step_path(length, steps)
        assert _is_permutation(path, length)
        assert set(path_step_magnitudes(path)) <= set(mags)


class TestAddressMapping:
    @pytest.mark.parametrize("name,expected", [
        ("A", [8, 16, 48]), ("B", [1, 64]), ("C", [16, 33, 49])])
    def test_vendor_distance_sets(self, name, expected):
        mapping = vendor(name).mapping(8192)
        assert mapping.distance_magnitudes() == expected

    @pytest.mark.parametrize("name", ["A", "B", "C"])
    def test_vendor_mappings_are_bijections(self, name):
        mapping = vendor(name).mapping(8192)
        s2p = mapping.sys_to_phys()
        p2s = mapping.phys_to_sys()
        assert np.array_equal(p2s[s2p], np.arange(8192))
        assert np.array_equal(s2p[p2s], np.arange(8192))

    def test_distance_set_is_sign_symmetric(self):
        for name in "ABC":
            dists = vendor(name).mapping(8192).neighbour_distance_set()
            assert {-d for d in dists} == set(dists)

    @given(st.integers(min_value=0, max_value=8191))
    @settings(max_examples=50, deadline=None)
    def test_neighbours_are_physically_adjacent(self, s):
        mapping = vendor("A").mapping(8192)
        left, right = mapping.physical_neighbours_of_sys(s)
        p = int(mapping.sys_to_phys()[s])
        if left is not None:
            assert int(mapping.sys_to_phys()[left]) == p - 1
        if right is not None:
            assert int(mapping.sys_to_phys()[right]) == p + 1

    def test_tile_edges_have_one_neighbour(self):
        mapping = vendor("B").mapping(8192)
        first_sys = int(mapping.phys_to_sys()[0])
        left, right = mapping.physical_neighbours_of_sys(first_sys)
        assert left is None and right is not None

    def test_out_of_range_address_rejected(self):
        with pytest.raises(ValueError):
            vendor("A").mapping(8192).physical_neighbours_of_sys(8192)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_scramble_descramble_roundtrip(self, seed):
        mapping = vendor("C").mapping(8192)
        rng = np.random.default_rng(seed)
        row = rng.integers(0, 2, size=8192, dtype=np.uint8)
        assert np.array_equal(mapping.descramble(mapping.scramble(row)),
                              row)

    def test_identity_mapping_is_linear(self):
        mapping = identity_mapping(64)
        assert mapping.neighbour_distance_set() == [-1, 1]
        assert np.array_equal(mapping.sys_to_phys(), np.arange(64))

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            AddressMapping(row_bits=100, block_bits=64,
                           block_path=tuple(range(64)))
        with pytest.raises(ValueError):
            AddressMapping(row_bits=128, block_bits=64,
                           block_path=tuple(range(63)) + (0,))
        with pytest.raises(ValueError):
            AddressMapping(row_bits=128, block_bits=64,
                           block_path=tuple(range(64)), tile_bits=48)

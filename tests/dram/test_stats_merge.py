"""TestStats aggregation across campaigns and worker processes."""

import pickle

from repro.dram.controller import TestStats as Stats
from repro.dram.timing import DDR3_1600, DramTiming


def _stats(tests=0, written=0, read=0, waits=0, timing=None):
    s = Stats(_timing=timing or DDR3_1600)
    s.tests, s.rows_written, s.rows_read, s.retention_waits = \
        tests, written, read, waits
    return s


def test_merge_sums_every_counter():
    merged = Stats.merge([_stats(1, 10, 20, 2), _stats(3, 5, 7, 11),
                          _stats(0, 0, 1, 0)])
    assert merged.tests == 4
    assert merged.rows_written == 15
    assert merged.rows_read == 28
    assert merged.retention_waits == 13


def test_merge_empty_iterable_gives_zero_record():
    merged = Stats.merge([])
    assert (merged.tests, merged.rows_written, merged.rows_read,
            merged.retention_waits) == (0, 0, 0, 0)


def test_merge_single_record_copies_rather_than_aliases():
    original = _stats(2, 3, 4, 5)
    merged = Stats.merge([original])
    assert merged is not original
    merged.tests += 100
    assert original.tests == 2


def test_merge_accepts_generators():
    merged = Stats.merge(_stats(tests=i) for i in range(5))
    assert merged.tests == 10


def test_merge_takes_timing_from_first_record():
    import dataclasses
    slow = dataclasses.replace(
        DDR3_1600, refresh_interval_ms=2 * DDR3_1600.refresh_interval_ms)
    merged = Stats.merge([_stats(waits=1, timing=slow),
                          _stats(waits=1)])
    assert merged._timing is slow
    # The estimate then uses the first record's refresh interval.
    assert merged.estimated_time_ns() == \
        merged.retention_waits * slow.refresh_interval_ms * 1e6


def test_add_operator_delegates_to_merge():
    total = _stats(1, 2, 3, 4) + _stats(10, 20, 30, 40)
    assert (total.tests, total.rows_written, total.rows_read,
            total.retention_waits) == (11, 22, 33, 44)


def test_merge_survives_pickle_roundtrip():
    """Fleet workers ship their counters back pickled."""
    shipped = [pickle.loads(pickle.dumps(_stats(1, 2, 3, 4))),
               pickle.loads(pickle.dumps(_stats(5, 6, 7, 8)))]
    merged = Stats.merge(shipped)
    assert (merged.tests, merged.rows_written, merged.rows_read,
            merged.retention_waits) == (6, 8, 10, 12)


def test_merge_is_associative():
    a, b, c = _stats(1, 1, 1, 1), _stats(2, 2, 2, 2), _stats(4, 4, 4, 4)
    left = (a + b) + c
    right = a + (b + c)
    assert (left.tests, left.rows_written, left.rows_read,
            left.retention_waits) == \
        (right.tests, right.rows_written, right.rows_read,
         right.retention_waits)

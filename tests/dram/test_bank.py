"""Bank storage: scrambling, polarity, and retention-read semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import (Bank, CoupledCellPopulation, CouplingSpec,
                        FaultSpec, NO_NEIGHBOUR, RandomFaultModel,
                        identity_mapping, vendor)
from repro.dram.cells import MAX_CONTEXT


def quiet_bank(mapping=None, n_rows=8, coupled=None, anti=None, seed=0):
    """A bank with no fault populations unless provided."""
    mapping = mapping or identity_mapping(64, tile_bits=64)
    rng = np.random.default_rng(seed)
    if coupled is None:
        empty = np.empty(0, dtype=np.int64)
        coupled = CoupledCellPopulation(
            row=empty, phys=empty.copy(), left_phys=empty.copy(),
            right_phys=empty.copy(), w_left=np.empty(0),
            w_right=np.empty(0), p_fail=np.empty(0))
    faults = RandomFaultModel(FaultSpec(soft_error_rate=0.0),
                              n_rows=n_rows, row_bits=mapping.row_bits,
                              rng=rng)
    return Bank(mapping=mapping, n_rows=n_rows, coupled=coupled,
                faults=faults, rng=rng, anti_rows=anti)


class TestReadWrite:
    @given(st.integers(min_value=0, max_value=2**31 - 1),
           st.integers(min_value=0, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_any_row(self, seed, row):
        bank = quiet_bank()
        data = np.random.default_rng(seed).integers(
            0, 2, size=64, dtype=np.uint8)
        bank.write_row(row, data)
        assert np.array_equal(bank.read_row(row), data)

    def test_roundtrip_with_vendor_scrambling(self):
        mapping = vendor("A").mapping(8192)
        bank = quiet_bank(mapping=mapping)
        data = np.random.default_rng(1).integers(0, 2, size=8192,
                                                 dtype=np.uint8)
        bank.write_row(3, data)
        assert np.array_equal(bank.read_row(3), data)

    def test_anti_rows_store_inverted_charge(self):
        anti = np.array([False, True] * 4)
        bank = quiet_bank(anti=anti)
        data = np.ones(64, dtype=np.uint8)
        bank.write_rows(np.arange(8), data)
        # True rows: charge == data; anti rows: inverted.
        assert (bank.charge[0] == 1).all()
        assert (bank.charge[1] == 0).all()
        # Read-back is polarity-corrected either way.
        assert np.array_equal(bank.read_row(1), data)

    def test_write_all_broadcasts(self):
        bank = quiet_bank()
        bank.write_all(np.ones(64, dtype=np.uint8))
        for row in range(8):
            assert bank.read_row(row).all()

    def test_shape_validation(self):
        bank = quiet_bank()
        with pytest.raises(ValueError):
            bank.write_row(0, np.ones(32, dtype=np.uint8))
        with pytest.raises(ValueError):
            bank.write_row(99, np.ones(64, dtype=np.uint8))
        with pytest.raises(ValueError):
            bank.read_row(-1)


def one_victim_bank(anti=None):
    """Victim at row 0, phys 5 (strongly left-coupled), linear map."""
    pop = CoupledCellPopulation(
        row=np.array([0]), phys=np.array([5]),
        left_phys=np.array([4]), right_phys=np.array([6]),
        w_left=np.array([1.5]), w_right=np.array([0.1]),
        p_fail=np.array([1.0]))
    return quiet_bank(coupled=pop, anti=anti)


class TestRetention:
    def test_uniform_data_yields_no_failures(self):
        bank = one_victim_bank()
        bank.write_all(np.zeros(64, dtype=np.uint8))
        rows, cols = bank.retention_failures()
        assert len(rows) == 0

    def test_worst_case_flips_victim(self):
        bank = one_victim_bank(anti=np.zeros(8, dtype=bool))
        data = np.ones(64, dtype=np.uint8)
        data[4] = 0
        bank.write_all(data)
        rows, cols = bank.retention_failures()
        assert list(zip(rows.tolist(), cols.tolist())) == [(0, 5)]

    def test_retention_read_shows_flip(self):
        bank = one_victim_bank(anti=np.zeros(8, dtype=bool))
        data = np.ones(64, dtype=np.uint8)
        data[4] = 0
        bank.write_rows(np.array([0]), data)
        observed = bank.retention_read_rows(np.array([0]))
        assert observed[0, 5] == 0          # flipped
        assert observed[0, 7] == 1          # everything else intact

    def test_anti_row_victim_needs_inverse_pattern(self):
        bank = one_victim_bank(anti=np.ones(8, dtype=bool))
        data = np.ones(64, dtype=np.uint8)
        data[4] = 0
        bank.write_all(data)
        # On an anti row the victim's charge is 0 -> no failure.
        rows, _ = bank.retention_failures()
        assert len(rows) == 0
        # The inverse pattern charges the victim -> failure.
        bank.write_all(1 - data)
        rows, cols = bank.retention_failures()
        assert list(zip(rows.tolist(), cols.tolist())) == [(0, 5)]

    def test_retention_read_all_matches_failures(self):
        bank = one_victim_bank(anti=np.zeros(8, dtype=bool))
        data = np.ones(64, dtype=np.uint8)
        data[4] = 0
        bank.write_all(data)
        observed = bank.retention_read_all()
        assert observed[0, 5] == 0
        # Rows without victims read back exactly.
        assert np.array_equal(observed[3], data)

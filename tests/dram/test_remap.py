"""Redundant-column remapping."""

import numpy as np
import pytest

from repro.dram import (CoupledCellPopulation, CouplingSpec, NO_NEIGHBOUR,
                        apply_column_remapping, identity_mapping)


def make_pop(n=400, seed=0):
    rng = np.random.default_rng(seed)
    return CoupledCellPopulation.generate(
        CouplingSpec(n_cells=n), n_rows=32, row_bits=1024, tile_bits=128,
        rng=rng)


class TestRemap:
    def test_fraction_remapped(self):
        pop = make_pop(2000)
        mapping = identity_mapping(1024, tile_bits=128)
        k = apply_column_remapping(pop, mapping, fraction=0.25,
                                   rng=np.random.default_rng(1))
        assert k == int(pop.remapped.sum())
        assert 0.18 <= k / 2000 <= 0.32

    def test_zero_fraction_is_noop(self):
        pop = make_pop()
        mapping = identity_mapping(1024, tile_bits=128)
        k = apply_column_remapping(pop, mapping, fraction=0.0,
                                   rng=np.random.default_rng(1))
        assert k == 0
        assert not pop.remapped.any()

    def test_remapped_aggressors_stay_in_tile(self):
        pop = make_pop(2000)
        mapping = identity_mapping(1024, tile_bits=128)
        apply_column_remapping(pop, mapping, fraction=0.5,
                               rng=np.random.default_rng(2))
        m = pop.remapped
        assert (pop.left_phys[m] // 128 == pop.phys[m] // 128).all()
        assert (pop.right_phys[m] // 128 == pop.phys[m] // 128).all()

    def test_remapped_aggressors_differ_from_victim(self):
        pop = make_pop(2000)
        mapping = identity_mapping(1024, tile_bits=128)
        apply_column_remapping(pop, mapping, fraction=0.5,
                               rng=np.random.default_rng(3))
        m = pop.remapped
        assert (pop.left_phys[m] != pop.phys[m]).all()
        assert (pop.right_phys[m] != pop.phys[m]).all()
        assert (pop.left_phys[m] != pop.right_phys[m]).all()

    def test_remap_clears_context(self):
        pop = make_pop(2000)
        mapping = identity_mapping(1024, tile_bits=128)
        apply_column_remapping(pop, mapping, fraction=1.0,
                               rng=np.random.default_rng(4))
        assert (pop.context == NO_NEIGHBOUR).all()

    def test_invalid_fraction_rejected(self):
        pop = make_pop(10)
        mapping = identity_mapping(1024, tile_bits=128)
        with pytest.raises(ValueError):
            apply_column_remapping(pop, mapping, fraction=1.5,
                                   rng=np.random.default_rng(0))

    def test_empty_population_is_noop(self):
        empty = np.empty(0, dtype=np.int64)
        pop = CoupledCellPopulation(
            row=empty, phys=empty.copy(), left_phys=empty.copy(),
            right_phys=empty.copy(), w_left=np.empty(0),
            w_right=np.empty(0), p_fail=np.empty(0))
        mapping = identity_mapping(1024, tile_bits=128)
        assert apply_column_remapping(
            pop, mapping, fraction=0.5,
            rng=np.random.default_rng(0)) == 0

"""Multi-bank chips and second-order mapping queries."""

import numpy as np
import pytest

from repro.core import ParborConfig, run_parbor
from repro.dram import MemoryController, vendor


class TestMultiBank:
    @pytest.fixture(scope="class")
    def chip(self):
        return vendor("A").make_chip(seed=9, n_rows=48, n_banks=2)

    def test_controller_covers_all_banks(self, chip):
        ctrl = MemoryController(chip)
        fails = ctrl.test_pattern(np.zeros(8192, dtype=np.uint8))
        assert len(fails) == 2
        assert ctrl.stats.rows_written == 2 * 48

    def test_bank_local_coordinates(self, chip):
        ctrl = MemoryController(chip)
        data = np.random.default_rng(0).integers(0, 2, 8192,
                                                 dtype=np.uint8)
        ctrl.write_row(1, 5, data)
        assert np.array_equal(ctrl.read_row(1, 5), data)
        # Bank 0's row 5 is untouched by bank 1's write.
        assert not np.array_equal(ctrl.read_row(0, 5), data) \
            or chip.banks[0].charge[5].sum() in (0, 8192)

    def test_campaign_spans_banks(self, chip):
        result = run_parbor(chip, ParborConfig(sample_size=800), seed=3,
                            run_sweep=False)
        banks_in_sample = set(result.sample.bank.tolist())
        assert banks_in_sample == {0, 1}
        assert result.magnitudes() == [8, 16, 48]


class TestSecondOrderMappingQueries:
    def test_vendor_a_second_order(self):
        mapping = vendor("A").mapping(8192)
        second = set(mapping.distance_magnitudes(order=2))
        # Sums of consecutive unit steps {+-1, +-2, +-6} x 8, minus
        # anything equal to a first-order distance.
        assert second
        assert all(m % 8 == 0 for m in second)
        first = set(mapping.distance_magnitudes(order=1))
        assert not (second & first) or second != first

    def test_vendor_c_second_order_excludes_first(self):
        mapping = vendor("C").mapping(8192)
        first = mapping.neighbour_distance_set(order=1)
        second = mapping.neighbour_distance_set(order=2)
        # Composed distances exist and the sets are sign-symmetric.
        assert second
        assert {-d for d in second} == set(second)

    def test_order_three_exists(self):
        mapping = vendor("B").mapping(8192)
        third = mapping.distance_magnitudes(order=3)
        assert third  # e.g. 62/66 from +-1, +-64 compositions

    def test_order_beyond_tile_empty(self):
        from repro.dram import identity_mapping
        mapping = identity_mapping(16, tile_bits=8)
        assert mapping.neighbour_distance_set(order=8) == []


class TestCustomVendor:
    def test_custom_distance_set_recovered(self):
        from repro.core import ParborConfig, run_parbor
        from repro.dram import custom_vendor
        v = custom_vendor("X", steps=(3, 11, 27), block_bits=256)
        assert v.expected_magnitudes == (3, 11, 27)
        chip = v.make_chip(seed=2, n_rows=96)
        assert {abs(d) for d in chip.ground_truth_distances()} \
            == {3, 11, 27}
        res = run_parbor(chip,
                         ParborConfig(sample_size=1500,
                                      ranking_threshold=0.04),
                         seed=1, run_sweep=False)
        assert res.magnitudes() == [3, 11, 27]

    def test_shadowing_builtin_rejected(self):
        from repro.dram import custom_vendor
        with pytest.raises(ValueError):
            custom_vendor("a", steps=(3,))

    def test_empty_steps_rejected(self):
        from repro.dram import custom_vendor
        with pytest.raises(ValueError):
            custom_vendor("X", steps=(0,))

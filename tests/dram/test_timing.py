"""DDR3 timing parameters and the appendix time arithmetic."""

import pytest

from repro.dram import DDR3_1600, DramTiming, t_rfc_ns


class TestRowCycle:
    def test_two_block_access_matches_appendix(self):
        # Appendix formula: t_RCD + t_CCD * 2 + t_RP = 13.75 + 10 +
        # 13.75 = 37.5 ns. (The paper prints "42.5" but its own
        # full-row case - 13.75 + 5*128 + 13.75 = 667.5 - confirms the
        # formula; 42.5 is an arithmetic slip in the paper.)
        assert DDR3_1600.two_block_access_ns() == pytest.approx(37.5)

    def test_full_row_access_matches_appendix(self):
        # Appendix: 13.75 + 5 * 128 + 13.75 = 667.5 ns for an 8 KB row.
        assert DDR3_1600.full_row_access_ns(8192) == pytest.approx(667.5)

    def test_row_cycle_scales_with_bursts(self):
        one = DDR3_1600.row_cycle_ns(1)
        ten = DDR3_1600.row_cycle_ns(10)
        assert ten - one == pytest.approx(9 * DDR3_1600.t_ccd_ns)

    def test_zero_bursts_rejected(self):
        with pytest.raises(ValueError):
            DDR3_1600.row_cycle_ns(0)

    def test_partial_block_row_rejected(self):
        with pytest.raises(ValueError):
            DDR3_1600.full_row_access_ns(row_bytes=100, block_bytes=64)


class TestTrfc:
    def test_paper_densities(self):
        # Footnote 6: 590 ns at 16 Gbit, 1 us at 32 Gbit.
        assert t_rfc_ns(16) == pytest.approx(590.0)
        assert t_rfc_ns(32) == pytest.approx(1000.0)

    def test_trfc_monotone_in_density(self):
        values = [t_rfc_ns(d) for d in (1, 2, 4, 8, 16, 32)]
        assert values == sorted(values)

    def test_unknown_density_rejected(self):
        with pytest.raises(ValueError):
            t_rfc_ns(3)


class TestCustomTiming:
    def test_custom_refresh_interval(self):
        timing = DramTiming(refresh_interval_ms=32.0)
        assert timing.refresh_interval_ms == 32.0
        # Other defaults unchanged.
        assert timing.t_rcd_ns == DDR3_1600.t_rcd_ns

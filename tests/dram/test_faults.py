"""Random (non-data-dependent) failure injectors."""

import numpy as np
import pytest

from repro.dram import FaultSpec, RandomFaultModel


def make_model(seed=0, **kwargs):
    spec = FaultSpec(**kwargs)
    rng = np.random.default_rng(seed)
    return RandomFaultModel(spec, n_rows=64, row_bits=1024, rng=rng)


def charged(n_rows=64, row_bits=1024):
    return np.ones((n_rows, row_bits), dtype=np.uint8)


class TestSoftErrors:
    def test_rate_scales_with_cells(self):
        model = make_model(soft_error_rate=1e-3)
        totals = sum(len(model.retention_flips(charged())[0])
                     for _ in range(50))
        expected = 50 * 1e-3 * 64 * 1024
        assert 0.5 * expected <= totals <= 1.5 * expected

    def test_zero_rate_no_flips(self):
        model = make_model(soft_error_rate=0.0)
        rows, cols = model.retention_flips(charged())
        assert len(rows) == 0 and len(cols) == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(soft_error_rate=-1.0)


class TestVrt:
    def test_leaky_vrt_fails_when_charged(self):
        model = make_model(soft_error_rate=0.0, n_vrt_cells=20,
                           vrt_toggle_prob=0.0,
                           vrt_leaky_start_fraction=1.0)
        rows, cols = model.retention_flips(charged())
        assert len(rows) == 20

    def test_vrt_silent_when_discharged(self):
        model = make_model(soft_error_rate=0.0, n_vrt_cells=20,
                           vrt_toggle_prob=0.0,
                           vrt_leaky_start_fraction=1.0)
        empty = np.zeros((64, 1024), dtype=np.uint8)
        rows, _cols = model.retention_flips(empty)
        assert len(rows) == 0

    def test_vrt_never_leaky_never_fails(self):
        model = make_model(soft_error_rate=0.0, n_vrt_cells=20,
                           vrt_toggle_prob=0.0,
                           vrt_leaky_start_fraction=0.0)
        rows, _ = model.retention_flips(charged())
        assert len(rows) == 0

    def test_vrt_toggles_state(self):
        model = make_model(soft_error_rate=0.0, n_vrt_cells=200,
                           vrt_toggle_prob=1.0,
                           vrt_leaky_start_fraction=0.0)
        # First read: every cell toggles to leaky.
        rows, _ = model.retention_flips(charged())
        assert len(rows) == 200
        # Second read: toggles back to healthy.
        rows, _ = model.retention_flips(charged())
        assert len(rows) == 0

    def test_toggle_prob_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(vrt_toggle_prob=1.5)


class TestMarginal:
    def test_marginal_fails_about_half_the_time(self):
        model = make_model(soft_error_rate=0.0, n_marginal_cells=100,
                           marginal_fail_prob=0.5)
        totals = sum(len(model.retention_flips(charged())[0])
                     for _ in range(40))
        assert 0.35 * 4000 <= totals <= 0.65 * 4000

    def test_marginal_prob_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(marginal_fail_prob=2.0)

    def test_flip_coordinates_in_range(self):
        model = make_model(soft_error_rate=1e-4, n_vrt_cells=10,
                           n_marginal_cells=10)
        rows, cols = model.retention_flips(charged())
        assert (rows >= 0).all() and (rows < 64).all()
        assert (cols >= 0).all() and (cols < 1024).all()


class TestDeterminism:
    def test_same_seed_same_flips(self):
        a = make_model(seed=42, soft_error_rate=1e-4, n_vrt_cells=30,
                       n_marginal_cells=30)
        b = make_model(seed=42, soft_error_rate=1e-4, n_vrt_cells=30,
                       n_marginal_cells=30)
        ra, ca = a.retention_flips(charged())
        rb, cb = b.retention_flips(charged())
        assert np.array_equal(ra, rb) and np.array_equal(ca, cb)

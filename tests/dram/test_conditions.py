"""Operating conditions: temperature and refresh-interval stress."""

import numpy as np
import pytest

from repro.dram import CouplingSpec, MemoryController, vendor
from repro.core import random_pattern


def failures_at(chip, temperature_c=45.0, interval_s=4.0, seed=0):
    chip.set_conditions(temperature_c=temperature_c,
                        refresh_interval_s=interval_s)
    ctrl = MemoryController(chip)
    rng = np.random.default_rng(seed)
    total = 0
    for _ in range(8):
        per_bank = ctrl.test_pattern(random_pattern(chip.row_bits, rng))
        total += sum(len(r) for r, _ in per_bank)
    return total


class TestStressModel:
    def test_default_stress_is_one(self):
        chip = vendor("A").make_chip(seed=0, n_rows=32)
        assert chip.banks[0].stress == 1.0
        assert chip.set_conditions() == pytest.approx(1.0)

    def test_stress_formula(self):
        chip = vendor("A").make_chip(seed=0, n_rows=16)
        assert chip.set_conditions(55.0, 4.0) == pytest.approx(2.0)
        assert chip.set_conditions(45.0, 2.0) == pytest.approx(0.5)
        assert chip.set_conditions(35.0, 8.0) == pytest.approx(1.0)

    def test_invalid_interval_rejected(self):
        chip = vendor("A").make_chip(seed=0, n_rows=16)
        with pytest.raises(ValueError):
            chip.set_conditions(refresh_interval_s=0.0)

    def test_hotter_means_more_failures(self):
        chip = vendor("C").make_chip(seed=4, n_rows=64)
        cold = failures_at(chip, temperature_c=40.0)
        nominal = failures_at(chip, temperature_c=45.0)
        hot = failures_at(chip, temperature_c=50.0)
        assert cold < nominal <= hot * 1.05
        assert cold < hot

    def test_longer_interval_means_more_failures(self):
        chip = vendor("C").make_chip(seed=4, n_rows=64)
        short = failures_at(chip, interval_s=1.0)
        nominal = failures_at(chip, interval_s=4.0)
        assert short < nominal

    def test_min_stress_range_respected(self):
        spec = CouplingSpec(n_cells=10, min_stress_range=(0.9, 1.0))
        assert spec.min_stress_range == (0.9, 1.0)


class TestTemperatureInvariance:
    def test_neighbour_locations_independent_of_temperature(self):
        """Paper Section 6: 'We find that neighbor locations determined
        by PARBOR are not dependent on temperature.'"""
        from repro.analysis import temperature_sensitivity
        results = temperature_sensitivity("A", temperatures_c=(40.0, 45.0,
                                                               50.0),
                                          seed=17, n_rows=96,
                                          sample_size=1500)
        mags = {t: tuple(r.magnitudes()) for t, r in results.items()}
        assert mags[45.0] == (8, 16, 48)
        assert mags[40.0] == mags[45.0] == mags[50.0]

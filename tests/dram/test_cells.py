"""Coupled-cell population: generation invariants and failure rules."""

import numpy as np
import pytest

from repro.dram import (NO_NEIGHBOUR, CoupledCellPopulation, CouplingSpec,
                        vendor)
from repro.dram.cells import MAX_CONTEXT


def make_pop(n_cells=500, seed=0, **spec_kwargs):
    spec = CouplingSpec(n_cells=n_cells, **spec_kwargs)
    rng = np.random.default_rng(seed)
    return CoupledCellPopulation.generate(spec, n_rows=64, row_bits=1024,
                                          tile_bits=128, rng=rng)


def manual_pop(w_left, w_right, p_fail=1.0, context=None):
    """A single victim at row 0, phys 5, aggressors at 4 and 6."""
    ctx = np.full((1, 2 * MAX_CONTEXT), NO_NEIGHBOUR, dtype=np.int64)
    if context:
        for i, pos in enumerate(context):
            ctx[0, i] = pos
    return CoupledCellPopulation(
        row=np.array([0]), phys=np.array([5]),
        left_phys=np.array([4]), right_phys=np.array([6]),
        w_left=np.array([w_left]), w_right=np.array([w_right]),
        p_fail=np.array([p_fail]), context=ctx)


def charge_grid(row_bits=16):
    return np.zeros((1, row_bits), dtype=np.uint8)


class TestGeneration:
    def test_population_size(self):
        assert len(make_pop(321)) == 321

    def test_strong_weak_partition(self):
        pop = make_pop()
        assert (pop.strong_mask | pop.weak_mask).all()
        assert not (pop.strong_mask & pop.weak_mask).any()

    def test_strong_fraction_respected(self):
        pop = make_pop(4000, strong_fraction=0.5)
        frac = pop.strong_mask.mean()
        assert 0.42 <= frac <= 0.58

    def test_weak_weights_require_both_sides(self):
        pop = make_pop()
        weak = pop.weak_mask
        assert (pop.w_left[weak] < 1.0).all()
        assert (pop.w_right[weak] < 1.0).all()
        assert (pop.w_left[weak] + pop.w_right[weak] >= 1.0).all()

    def test_aggressors_adjacent_or_edge(self):
        pop = make_pop()
        has_left = pop.left_phys != NO_NEIGHBOUR
        has_right = pop.right_phys != NO_NEIGHBOUR
        assert np.array_equal(pop.left_phys[has_left],
                              pop.phys[has_left] - 1)
        assert np.array_equal(pop.right_phys[has_right],
                              pop.phys[has_right] + 1)

    def test_weak_victims_never_at_tile_edges(self):
        pop = make_pop(3000)
        weak = pop.weak_mask
        assert (pop.left_phys[weak] != NO_NEIGHBOUR).all()
        assert (pop.right_phys[weak] != NO_NEIGHBOUR).all()

    def test_strong_victims_have_no_context(self):
        pop = make_pop()
        strong = pop.strong_mask
        assert (pop.context[strong] == NO_NEIGHBOUR).all()

    def test_context_positions_within_tile(self):
        pop = make_pop(3000)
        tile = 128
        for j in range(2 * MAX_CONTEXT):
            ok = pop.context[:, j] != NO_NEIGHBOUR
            assert (pop.context[ok, j] // tile == pop.phys[ok] // tile).all()

    def test_context_excludes_first_order_distances(self):
        mapping = vendor("A").mapping(8192)
        spec = CouplingSpec(n_cells=3000)
        rng = np.random.default_rng(3)
        pop = CoupledCellPopulation.generate(
            spec, n_rows=16, row_bits=8192, tile_bits=mapping.tile_bits,
            rng=rng, mapping=mapping)
        p2s = mapping.phys_to_sys()
        first = set(mapping.neighbour_distance_set())
        for j in range(2 * MAX_CONTEXT):
            ok = pop.context[:, j] != NO_NEIGHBOUR
            sys_d = p2s[pop.context[ok, j]] - p2s[pop.phys[ok]]
            assert not any(int(d) in first for d in sys_d)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CouplingSpec(n_cells=-1)
        with pytest.raises(ValueError):
            CouplingSpec(n_cells=1, strong_fraction=1.5)
        with pytest.raises(ValueError):
            CouplingSpec(n_cells=1, context_k_probs=(1.0,))
        with pytest.raises(ValueError):
            CouplingSpec(n_cells=1,
                         context_k_probs=(0.5, 0.2, 0.2, 0.2, 0.2))

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            CoupledCellPopulation(
                row=np.zeros(2), phys=np.zeros(2), left_phys=np.zeros(2),
                right_phys=np.zeros(2), w_left=np.zeros(2),
                w_right=np.zeros(1), p_fail=np.zeros(2))


class TestFailureRules:
    def test_uniform_charge_never_fails(self):
        pop = manual_pop(w_left=1.2, w_right=0.1)
        rng = np.random.default_rng(0)
        for value in (0, 1):
            charge = np.full((1, 16), value, dtype=np.uint8)
            assert not pop.evaluate_failures(charge, rng).any()

    def test_strong_left_fails_with_left_opposite(self):
        pop = manual_pop(w_left=1.2, w_right=0.1)
        charge = charge_grid()
        charge[0, 5] = 1   # victim charged
        charge[0, 6] = 1   # right same -> only left differs
        fails = pop.evaluate_failures(charge, np.random.default_rng(0))
        assert fails.all()

    def test_strong_left_ignores_right_neighbour(self):
        pop = manual_pop(w_left=1.2, w_right=0.1)
        charge = charge_grid()
        charge[0, 5] = 1
        charge[0, 4] = 1   # left same -> no dominant interference
        fails = pop.evaluate_failures(charge, np.random.default_rng(0))
        assert not fails.any()

    def test_discharged_victim_never_fails(self):
        pop = manual_pop(w_left=1.2, w_right=1.2)
        charge = np.ones((1, 16), dtype=np.uint8)
        charge[0, 5] = 0   # victim discharged among charged cells
        fails = pop.evaluate_failures(charge, np.random.default_rng(0))
        assert not fails.any()

    def test_weak_needs_both_neighbours(self):
        pop = manual_pop(w_left=0.6, w_right=0.6)
        charge = charge_grid()
        charge[0, 5] = 1
        charge[0, 4] = 1   # only right opposite
        assert not pop.evaluate_failures(
            charge, np.random.default_rng(0)).any()
        charge[0, 4] = 0   # both opposite
        assert pop.evaluate_failures(
            charge, np.random.default_rng(0)).all()

    def test_context_veto(self):
        pop = manual_pop(w_left=0.6, w_right=0.6, context=[3, 8])
        charge = charge_grid()
        charge[0, 5] = 1            # victim charged, aggressors 0
        charge[0, 3] = 1            # context holds victim value
        charge[0, 8] = 1
        assert pop.evaluate_failures(
            charge, np.random.default_rng(0)).all()
        charge[0, 8] = 0            # one context cell shields
        assert not pop.evaluate_failures(
            charge, np.random.default_rng(0)).any()

    def test_p_fail_zero_never_fails(self):
        pop = manual_pop(w_left=1.5, w_right=1.5, p_fail=0.0)
        charge = charge_grid()
        charge[0, 5] = 1
        assert not pop.evaluate_failures(
            charge, np.random.default_rng(0)).any()

    def test_subset_preserves_fields(self):
        pop = make_pop(100)
        sub = pop.subset(pop.strong_mask)
        assert len(sub) == int(pop.strong_mask.sum())
        assert sub.strong_mask.all()

    def test_context_k_counts_present_cells(self):
        pop = manual_pop(w_left=0.6, w_right=0.6, context=[3, 8])
        assert pop.context_k()[0] == 2

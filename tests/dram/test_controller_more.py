"""Additional controller and bank coverage."""

import numpy as np
import pytest

from repro.dram import MemoryController, vendor


@pytest.fixture()
def ctrl():
    return MemoryController(vendor("A").make_chip(seed=0, n_rows=16))


class TestPerRowPatterns:
    def test_per_row_pattern_roundtrip(self, ctrl):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2, size=(16, 8192), dtype=np.uint8)
        ctrl.test_pattern_per_row(data)
        for row in (0, 7, 15):
            assert np.array_equal(ctrl.read_row(0, row), data[row])

    def test_per_row_counts_one_test(self, ctrl):
        data = np.zeros((16, 8192), dtype=np.uint8)
        ctrl.test_pattern_per_row(data)
        assert ctrl.stats.tests == 1
        assert ctrl.stats.retention_waits == 1

    def test_write_rows_accepts_2d(self, ctrl):
        rows = np.array([2, 5])
        data = np.ones((2, 8192), dtype=np.uint8)
        data[1, :100] = 0
        ctrl.write_rows(0, rows, data)
        assert ctrl.read_row(0, 2).all()
        assert not ctrl.read_row(0, 5)[:100].any()

    def test_fill_covers_all_banks(self):
        chip = vendor("A").make_chip(seed=0, n_rows=8, n_banks=2)
        ctrl = MemoryController(chip)
        ctrl.fill(np.ones(8192, dtype=np.uint8))
        assert ctrl.read_row(0, 3).all()
        assert ctrl.read_row(1, 3).all()
        assert ctrl.stats.rows_written == 16


class TestStatsArithmetic:
    def test_estimated_time_counts_components(self, ctrl):
        data = np.zeros(8192, dtype=np.uint8)
        ctrl.test_pattern(data)
        ctrl.test_pattern(data)
        t = ctrl.stats.estimated_time_ns()
        # Two retention waits dominate: >= 128 ms.
        assert t >= 2 * 64e6
        # Row accesses contribute too.
        assert t > 2 * 64e6

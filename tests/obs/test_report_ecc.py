"""``repro report``: the "ecc" section golden.

Runs ``repro characterize --ecc --trace`` at tiny geometry and pins
the rendered report - including the new ``ecc`` section fed by the
``profile.ecc.*`` stage counters - character-for-character.

Regenerate after an intentional change with:

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/obs/test_report_ecc.py
"""

import os
import pathlib

import pytest

from repro.cli import main
from repro.obs.report import render_report
from repro.obs.trace import read_jsonl

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "goldens"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDENS"))

TINY_ARGS = ["--vendor", "A", "--rows", "48", "--sample", "500",
             "--seed", "2016", "--ecc"]


def _check(name: str, text: str) -> None:
    path = GOLDEN_DIR / f"{name}.txt"
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing golden {path}; run with REPRO_REGEN_GOLDENS=1")
    assert text == path.read_text(), (
        f"{name} drifted from its golden; if the change is intentional, "
        f"regenerate with REPRO_REGEN_GOLDENS=1")


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "ecc_A.jsonl"
    rc = main(["characterize", *TINY_ARGS, "--trace", str(path)])
    assert rc == 0
    return path


class TestEccReportSection:
    def test_report_golden(self, trace_file, capsys):
        capsys.readouterr()
        rc = main(["report", str(trace_file), "--no-timing"])
        assert rc == 0
        _check("report_ecc_A", capsys.readouterr().out)

    def test_ecc_section_present(self, trace_file):
        report = render_report(read_jsonl(trace_file),
                               include_timing=False)
        assert "\necc\n" in f"\n{report}\n"
        assert "profile.ecc.words" in report
        assert "profile.ecc.masked" in report

    def test_ecc_counters_not_in_robustness_section(self, trace_file):
        report = render_report(read_jsonl(trace_file),
                               include_timing=False)
        robustness = [s for s in report.split("\n\n")
                      if s.startswith("profile robustness")]
        assert all("profile.ecc." not in s for s in robustness)

    def test_plain_trace_has_no_ecc_section(self, tmp_path):
        plain = tmp_path / "plain.jsonl"
        rc = main(["characterize", "--vendor", "A", "--rows", "48",
                   "--sample", "500", "--seed", "2016",
                   "--trace", str(plain)])
        assert rc == 0
        report = render_report(read_jsonl(plain), include_timing=False)
        assert "\necc\n" not in f"\n{report}\n"

"""MetricsRegistry: counters, histograms, merge, fleet determinism."""

import dataclasses

import pytest

from repro.obs import MetricsRegistry
from repro.runtime import CampaignSpec, run_fleet

TINY = dict(n_rows=48, sample_size=400)


class TestRegistry:
    def test_inc_and_counter(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2)
        assert reg.counter("a") == 3
        assert reg.counter("missing") == 0

    def test_observe_folds_histogram(self):
        reg = MetricsRegistry()
        for v in (1.0, 3.0, 2.0):
            reg.observe("h", v)
        hist = reg.histograms["h"]
        assert hist["count"] == 3
        assert hist["sum"] == 6.0
        assert hist["min"] == 1.0
        assert hist["max"] == 3.0

    def test_family_parses_bracket_labels(self):
        reg = MetricsRegistry()
        reg.inc("tests.level[1]", 2)
        reg.inc("tests.level[2]", 8)
        reg.inc("tests.total", 10)
        assert reg.family("tests.level") == {"1": 2, "2": 8}

    def test_deterministic_counters_excludes_proc(self):
        reg = MetricsRegistry()
        reg.inc("tests.total", 90)
        reg.inc("proc.fleet.retries", 1)
        det = reg.deterministic_counters()
        assert "tests.total" in det
        assert "proc.fleet.retries" not in det

    def test_merge(self):
        a = MetricsRegistry()
        a.inc("c", 1)
        a.observe("h", 1.0)
        b = MetricsRegistry()
        b.inc("c", 2)
        b.observe("h", 5.0)
        merged = MetricsRegistry.merge([a, None, b])
        assert merged.counter("c") == 3
        assert merged.histograms["h"]["count"] == 2
        assert merged.histograms["h"]["max"] == 5.0

    def test_round_trips_through_dict(self):
        reg = MetricsRegistry()
        reg.inc("c", 4)
        reg.observe("h", 2.5)
        back = MetricsRegistry.from_dict(reg.to_dict())
        assert back.counters == reg.counters
        assert back.histograms == reg.histograms


class TestFleetMergeDeterminism:
    """Cross-worker merged counters must match a serial traced run."""

    @pytest.fixture(scope="class")
    def specs(self):
        base = CampaignSpec(experiment="characterize", vendor="A",
                            build_seed=7, run_seed=11, run_sweep=False,
                            trace=True, **TINY)
        return [dataclasses.replace(base, vendor=v, run_seed=s)
                for v, s in (("A", 11), ("B", 12), ("C", 13))]

    def test_parallel_metrics_equal_serial(self, specs):
        serial = run_fleet(specs, jobs=1)
        parallel = run_fleet(specs, jobs=2)
        assert serial.signatures() == parallel.signatures()
        assert serial.metrics is not None
        assert parallel.metrics is not None
        assert (serial.metrics.deterministic_counters()
                == parallel.metrics.deterministic_counters())

    def test_merged_counters_match_outcome_stats(self, specs):
        fleet = run_fleet(specs, jobs=2)
        assert fleet.metrics.counter("io.tests") == fleet.stats.tests
        assert (fleet.metrics.counter("io.rows_written")
                == fleet.stats.rows_written)
        assert fleet.metrics.counter("campaigns") == len(specs)

    def test_trace_records_ride_back_from_workers(self, specs):
        fleet = run_fleet(specs, jobs=2)
        records = fleet.trace_records()
        campaign_spans = [r for r in records if r["kind"] == "span"
                          and r["name"] == "campaign"]
        assert len(campaign_spans) == len(specs)
        # Each worker session is keyed by the spec's ladder trace ID.
        assert ({r["trace"] for r in campaign_spans}
                == {s.trace_id() for s in specs})

"""Tracer: span nesting, JSONL round-trip, no-op hooks, sessions."""

import numpy as np
import pytest

from repro import obs
from repro.obs.trace import (NULL_SPAN, Tracer, read_jsonl, write_jsonl)


class TestSpanNesting:
    def test_parent_child_linkage(self):
        tracer = Tracer("t#1", label="demo")
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        spans = [r for r in tracer.records if r["kind"] == "span"]
        # Children close (and are appended) before their parents.
        assert [s["name"] for s in spans] == ["inner", "outer"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        assert by_name["outer"]["parent"] == 0

    def test_meta_record_first(self):
        tracer = Tracer("t#2", label="demo")
        meta = tracer.records[0]
        assert meta["kind"] == "meta"
        assert meta["trace"] == "t#2"

    def test_monotonic_and_duration(self):
        ticks = iter(range(0, 1000, 10))
        tracer = Tracer("t#3", clock=lambda: next(ticks))
        with tracer.span("a"):
            pass
        span = tracer.records[-1]
        assert span["t_ns"] >= 0
        assert span["dur_ns"] >= 0

    def test_set_merges_attrs(self):
        tracer = Tracer("t#4")
        with tracer.span("a", x=1) as sp:
            sp.set(y=2)
        span = tracer.records[-1]
        assert span["attrs"] == {"x": 1, "y": 2}

    def test_event_carries_open_span_parent(self):
        tracer = Tracer("t#5")
        with tracer.span("outer"):
            tracer.event("ping", n=3)
        event = next(r for r in tracer.records if r["kind"] == "event")
        assert event["name"] == "ping"
        assert event["attrs"] == {"n": 3}


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        tracer = Tracer("t#rt", label="demo")
        with tracer.span("outer", vendor="A"):
            with tracer.span("inner", level=np.int64(3)):
                tracer.event("e", dists=np.array([8, -8]))
        path = tmp_path / "trace.jsonl"
        n = write_jsonl(path, tracer.records)
        assert n == len(tracer.records)
        back = read_jsonl(path)
        # numpy values are coerced to plain JSON scalars/lists.
        inner = next(r for r in back if r.get("name") == "inner")
        assert inner["attrs"]["level"] == 3
        event = next(r for r in back if r["kind"] == "event")
        assert event["attrs"]["dists"] == [8, -8]
        assert [r["kind"] for r in back] == \
            [r["kind"] for r in tracer.records]


class TestNoOpHooks:
    def test_disabled_hooks_do_nothing(self):
        assert not obs.enabled()
        assert obs.span("anything", x=1) is NULL_SPAN
        obs.event("anything")       # must not raise
        obs.inc("counter")
        obs.observe("hist", 1.0)
        assert obs.active() is None

    def test_null_span_is_inert(self):
        with obs.span("nope") as sp:
            sp.set(x=1)
        assert sp is NULL_SPAN


class TestSession:
    def test_session_activates_and_restores(self):
        assert obs.active() is None
        with obs.session("t#s", label="demo") as sess:
            assert obs.active() is sess
            obs.inc("c")
            with obs.span("a"):
                pass
        assert obs.active() is None
        assert sess.metrics.counters["c"] == 1
        assert any(r["kind"] == "span" for r in sess.tracer.records)

    def test_nested_session_joins_outer(self):
        with obs.session("outer#1") as outer:
            with obs.session("inner#2") as inner:
                assert inner is outer

    def test_session_restores_after_error(self):
        with pytest.raises(RuntimeError):
            with obs.session("t#err"):
                raise RuntimeError("boom")
        assert obs.active() is None

    def test_detach_clears_active(self):
        with obs.session("t#d"):
            obs.detach()
            assert not obs.enabled()
        assert obs.active() is None

    def test_export_records_appends_metrics_snapshot(self):
        with obs.session("t#m") as sess:
            obs.inc("c", 2)
        records = sess.export_records()
        assert records[-1]["kind"] == "metrics"
        assert records[-1]["counters"]["c"] == 2

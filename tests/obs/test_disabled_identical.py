"""Tracing must be invisible: traced outcomes == untraced outcomes.

The observability contract (docs/OBSERVABILITY.md) is that enabling
``trace`` changes *what is recorded*, never *what is computed*: the
same seeds produce byte-identical campaign outcomes with tracing on,
off, in-process, or in workers.  The PR-1 goldens already pin the
untraced path; these tests pin traced == untraced.
"""

import dataclasses

from repro import obs
from repro.runtime import CampaignSpec, run_fleet

TINY = dict(n_rows=48, sample_size=400, build_seed=7, run_seed=11)


def _outcome_fingerprint(outcome):
    """Everything result-bearing, including the merged I/O counters."""
    return (outcome.signature(), outcome.stats.tests,
            outcome.stats.rows_written, outcome.stats.rows_read,
            outcome.stats.retention_waits)


class TestTracedEqualsUntraced:
    def test_characterize_outcome_identical(self):
        spec = CampaignSpec(experiment="characterize", vendor="A", **TINY)
        base = spec.run()
        traced = dataclasses.replace(spec, trace=True).run()
        assert _outcome_fingerprint(traced) == _outcome_fingerprint(base)
        assert traced.trace_records, "traced run collected nothing"

    def test_compare_outcome_identical(self):
        spec = CampaignSpec(experiment="compare", vendor="B", **TINY)
        base = spec.run()
        traced = dataclasses.replace(spec, trace=True).run()
        assert _outcome_fingerprint(traced) == _outcome_fingerprint(base)
        assert (traced.comparison.parbor_failures
                == base.comparison.parbor_failures)
        assert (traced.comparison.random_failures
                == base.comparison.random_failures)

    def test_in_process_session_identical(self):
        spec = CampaignSpec(experiment="characterize", vendor="C", **TINY)
        base = spec.run()
        with obs.session("t#inproc") as sess:
            joined = spec.run()
        assert _outcome_fingerprint(joined) == _outcome_fingerprint(base)
        # Joined runs record into the caller's session instead of
        # shipping records on the outcome.
        assert joined.trace_records is None
        assert sess.metrics.counter("campaigns") == 1

    def test_fleet_traced_equals_untraced_any_jobs(self):
        base_spec = CampaignSpec(experiment="characterize", vendor="A",
                                 run_sweep=False, **TINY)
        specs = [dataclasses.replace(base_spec, vendor=v)
                 for v in ("A", "B", "C")]
        traced = [dataclasses.replace(s, trace=True) for s in specs]
        plain = run_fleet(specs, jobs=1)
        for jobs in (1, 2):
            fleet = run_fleet(traced, jobs=jobs)
            assert fleet.signatures() == plain.signatures()
            assert fleet.stats.tests == plain.stats.tests

    def test_untraced_run_leaves_no_session(self):
        spec = CampaignSpec(experiment="characterize", vendor="A", **TINY)
        outcome = spec.run()
        assert not obs.enabled()
        assert outcome.trace_records is None
        assert outcome.metrics is None

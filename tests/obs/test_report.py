"""``repro report``: end-to-end CLI golden at tiny geometry.

Runs ``repro characterize --trace`` followed by ``repro report
--no-timing`` and diffs the rendered breakdown character-for-character
against a checked-in golden.  ``--no-timing`` drops the wall-clock
sections, so the remaining output is a pure function of the seeds.

Regenerate after an intentional change with:

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/obs/test_report.py
"""

import json
import os
import pathlib

import pytest

from repro.cli import main
from repro.obs.report import render_report, summarise
from repro.obs.trace import read_jsonl

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "goldens"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDENS"))

TINY_ARGS = ["--vendor", "A", "--rows", "48", "--sample", "500",
             "--seed", "2016"]


def _check(name: str, text: str) -> None:
    path = GOLDEN_DIR / f"{name}.txt"
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing golden {path}; run with REPRO_REGEN_GOLDENS=1")
    assert text == path.read_text(), (
        f"{name} drifted from its golden; if the change is intentional, "
        f"regenerate with REPRO_REGEN_GOLDENS=1")


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "characterize_A.jsonl"
    rc = main(["characterize", *TINY_ARGS, "--trace", str(path)])
    assert rc == 0
    return path


class TestReportCommand:
    def test_report_golden(self, trace_file, capsys):
        capsys.readouterr()
        rc = main(["report", str(trace_file), "--no-timing"])
        assert rc == 0
        _check("report_characterize_A", capsys.readouterr().out)

    def test_report_counts_match_characterize(self, trace_file, tmp_path,
                                              capsys):
        """The report's level table re-derives the Table 1 counts."""
        out = tmp_path / "c.json"
        rc = main(["characterize", *TINY_ARGS, "--json", str(out)])
        assert rc == 0
        capsys.readouterr()
        expected = json.loads(out.read_text())
        summary = summarise(read_jsonl(trace_file))
        campaign = summary["campaigns"][0]
        assert campaign["tests_per_level"] == expected["tests_per_level"]
        assert (sum(campaign["tests_per_level"])
                == expected["total_tests"])

    def test_report_json_summary(self, trace_file, tmp_path, capsys):
        out = tmp_path / "summary.json"
        rc = main(["report", str(trace_file), "--no-timing",
                   "--json", str(out)])
        assert rc == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["campaigns"][0]["label"] == "characterize:A1"
        assert "metrics" in payload

    def test_timing_sections_gated(self, trace_file):
        records = read_jsonl(trace_file)
        with_timing = render_report(records, include_timing=True)
        without = render_report(records, include_timing=False)
        assert "wall clock" in with_timing
        assert "wall clock" not in without

    def test_profile_robustness_section(self, trace_file, tmp_path):
        """A ``--rounds`` trace gains a profile-robustness rollup; a
        single-pass trace does not carry one."""
        single = render_report(read_jsonl(trace_file),
                               include_timing=False)
        assert "profile robustness" not in single

        robust = tmp_path / "robust.jsonl"
        rc = main(["characterize", *TINY_ARGS, "--rounds", "2",
                   "--trace", str(robust)])
        assert rc == 0
        report = render_report(read_jsonl(robust), include_timing=False)
        assert "profile robustness" in report
        assert "profile.rounds" in report
        assert "profile.control_rounds" in report

    def test_report_missing_file(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_report_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        rc = main(["report", str(empty)])
        assert rc == 2
        assert "no trace records" in capsys.readouterr().err

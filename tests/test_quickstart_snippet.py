"""The documented quickstart snippet does what the docs promise."""

from repro.core import run_parbor
from repro.dram import vendor


def test_readme_quickstart_snippet():
    chip = vendor("A").make_chip(seed=1, n_rows=128)
    result = run_parbor(chip)
    assert sorted(result.distances, key=lambda d: (abs(d), d)) \
        == [-8, 8, -16, 16, -48, 48]
    assert result.recursion.tests_per_level == [2, 8, 8, 24, 48]
    assert len(result.detected) > 0

"""Service-level chaos: kill, hang, corrupt - and recover verified.

Each scenario drives a *real* daemon subprocess over its unix socket
(the same entry point ``repro serve`` uses) and asserts the service's
core guarantee: whatever dies mid-flight, a restarted daemon finishes
the campaign with result signatures byte-identical to an unperturbed
in-process ``run_fleet`` - not merely "it completed", but *verified*
(the daemon's default ``resume_mode="verify"`` re-checks journaled
outcomes on the way back up).

The faults are seeded through :func:`repro.runtime.service_chaos_plan`
so every run of this suite kills the same shard at the same target for
a given seed; the kill test sweeps three seeds to move the crash
around the shard layout.
"""

import time

import pytest

from repro.runtime import (apply_service_fault, corrupt_queue_record,
                           service_chaos_plan)
from repro.runtime.chaos import CRASH_EXIT_CODE
from repro.service import client
from tests.service.harness import (result_signature_map,
                                   signature_map, start_daemon,
                                   stop_daemon)

from .conftest import small_specs

SHARD_SIZE = 2


def _submit_and_expect_crash(tmp_path, wrapped, proc):
    """Submit the armed campaign and wait for the daemon to die."""
    sock = str(tmp_path / "svc.sock")
    response = client.submit(sock, wrapped, tenant="chaos")
    assert response["ok"] and response["shards"] == 2
    returncode = proc.wait(timeout=120)
    assert returncode == CRASH_EXIT_CODE  # injected os._exit, nothing else
    return response["campaign"]


@pytest.mark.parametrize("seed", [7, 19, 41])
def test_kill_daemon_mid_shard_recovers_byte_identical(
        tmp_path, clean_baseline, seed):
    """SIGKILL-equivalent mid-shard: restart resumes and verifies.

    The seeded ``kill-daemon`` fault fires ``os._exit`` inside a
    target while the daemon executes the shard in-process - the
    daemon dies between two fsync'd checkpoint appends, exactly like
    a kill -9.  A fresh daemon on the same state dir must replay the
    queue, re-run only what never finished (``resume="verify"``
    re-checks what did), and deliver signatures identical to the
    clean baseline.
    """
    sock = tmp_path / "svc.sock"
    state = tmp_path / "state"
    chaos_dir = state / "chaos"
    chaos_dir.mkdir(parents=True)

    specs = small_specs()
    plan = service_chaos_plan(seed, len(specs), SHARD_SIZE,
                              kinds=("kill-daemon",))
    wrapped = apply_service_fault(plan, specs, str(chaos_dir),
                                  SHARD_SIZE)

    proc = start_daemon(sock, state, shard_size=SHARD_SIZE)
    try:
        campaign = _submit_and_expect_crash(tmp_path, wrapped, proc)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # The kill left durable state behind: the submit record at
    # minimum, and whatever checkpoint appends beat the crash.
    assert (state / "queue.jsonl").exists()

    restarted = start_daemon(sock, state, shard_size=SHARD_SIZE)
    try:
        results = client.wait_results(str(sock), campaign,
                                      timeout=300.0)
        assert results["end"]["ok"], results["end"]
        assert (result_signature_map(results["results"])
                == signature_map(clean_baseline))
        status = client.status(str(sock))
        counters = status["counters"]
        assert counters.get("proc.service.resumed_campaigns") == 1
        assert status["corrupt_records"] == 0
    finally:
        assert stop_daemon(restarted, sock) == 0


def test_hang_shard_killed_by_watchdog_and_retried(tmp_path,
                                                   clean_baseline):
    """A target hanging past the watchdog does not wedge the daemon.

    With ``jobs=2`` the shard runs under ``run_fleet``'s parallel
    watchdog: the injected hang is killed at the deadline, the
    cross-process attempt counter advances, and the retry runs clean
    - all inside one daemon lifetime.
    """
    sock = tmp_path / "svc.sock"
    state = tmp_path / "state"
    chaos_dir = state / "chaos"
    chaos_dir.mkdir(parents=True)

    specs = small_specs()
    plan = service_chaos_plan(5, len(specs), SHARD_SIZE,
                              kinds=("hang-shard",))
    wrapped = apply_service_fault(plan, specs, str(chaos_dir),
                                  SHARD_SIZE, hang_s=120.0)

    proc = start_daemon(sock, state, shard_size=SHARD_SIZE, jobs=2,
                        timeout_s=5.0)
    try:
        response = client.submit(str(sock), wrapped, tenant="chaos")
        results = client.wait_results(str(sock),
                                      response["campaign"],
                                      timeout=300.0)
        assert results["end"]["ok"], results["end"]
        assert (result_signature_map(results["results"])
                == signature_map(clean_baseline))
        counters = client.status(str(sock))["counters"]
        # The hang cost a fleet-level retry, not a shard failure.
        assert not counters.get("proc.service.shards_failed")
    finally:
        assert stop_daemon(proc, sock) == 0


def test_corrupt_queue_record_is_detected_and_shard_rerun(tmp_path,
                                                          clean_baseline):
    """Bit rot in the queue journal: detected, dropped, re-run.

    A tampered ``shard_done`` record fails its CRC on replay; the
    restarted daemon counts it, treats the shard as pending again,
    and re-runs it under checkpoint verification - so the corruption
    costs one shard of compute, never wrong results.
    """
    sock = tmp_path / "svc.sock"
    state = tmp_path / "state"
    specs = small_specs()

    proc = start_daemon(sock, state, shard_size=SHARD_SIZE)
    try:
        response = client.submit(str(sock), specs, tenant="chaos")
        campaign = response["campaign"]
        client.wait_results(str(sock), campaign, timeout=300.0)
    finally:
        assert stop_daemon(proc, sock) == 0

    corrupt_queue_record(str(state / "queue.jsonl"), seed=3,
                         kinds=("shard_done",))

    restarted = start_daemon(sock, state, shard_size=SHARD_SIZE)
    try:
        status = client.status(str(sock))
        assert status["corrupt_records"] == 1
        assert status["counters"].get(
            "proc.service.corrupt_records") == 1
        results = client.wait_results(str(sock), campaign,
                                      timeout=300.0)
        assert (result_signature_map(results["results"])
                == signature_map(clean_baseline))
        # Wait for the re-run of the dropped shard to settle before
        # draining, then confirm it actually ran (and verified).
        give_up = time.monotonic() + 120.0
        while time.monotonic() < give_up:
            status = client.status(str(sock))
            if status["pending_targets"] == 0:
                break
            time.sleep(0.05)
        assert status["pending_targets"] == 0
        assert status["counters"].get("proc.service.shards_done") == 1
    finally:
        assert stop_daemon(restarted, sock) == 0


def test_sigterm_drains_gracefully_and_restart_completes(
        tmp_path, clean_baseline):
    """SIGTERM = graceful drain: exit 0, durable queue, clean resume."""
    import signal as signal_mod

    sock = tmp_path / "svc.sock"
    state = tmp_path / "state"
    specs = small_specs()

    proc = start_daemon(sock, state, shard_size=1)
    try:
        response = client.submit(str(sock), specs, tenant="chaos")
        campaign = response["campaign"]
        time.sleep(0.3)  # let the first shard get in flight
        proc.send_signal(signal_mod.SIGTERM)
        assert proc.wait(timeout=120) == 0  # drained, not killed
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    restarted = start_daemon(sock, state, shard_size=1)
    try:
        results = client.wait_results(str(sock), campaign,
                                      timeout=300.0)
        assert results["end"]["ok"], results["end"]
        assert (result_signature_map(results["results"])
                == signature_map(clean_baseline))
    finally:
        assert stop_daemon(restarted, sock) == 0

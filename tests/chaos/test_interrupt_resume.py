"""SIGINT mid-fleet: journaled progress survives, resume completes.

A child process runs a serial checkpointed fleet whose second target
hangs; the parent waits until the first outcome hits the journal,
interrupts the child, and then resumes the fleet from the journal in
its own process.  The resumed run must skip the completed target and
finish byte-identical to a clean baseline - the whole point of
flushing the journal on the way out of ``run_fleet``.
"""

import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.runtime import run_fleet

from .conftest import small_specs

HERE = pathlib.Path(__file__).parent
SRC = HERE.parents[1] / "src"

CHILD = """\
import sys
conftest_dir, ckpt, chaos_dir = sys.argv[1], sys.argv[2], sys.argv[3]
sys.path.insert(0, conftest_dir)
from conftest import small_specs
from repro.runtime import run_fleet, wrap_spec
specs = small_specs()
specs[1] = wrap_spec(specs[1], ("hang",), chaos_dir, hang_s=120.0)
run_fleet(specs, jobs=1, checkpoint=ckpt)
"""


def test_sigint_flushes_journal_and_resume_completes(tmp_path,
                                                     clean_baseline):
    ckpt = tmp_path / "fleet.ckpt"
    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD, str(HERE), str(ckpt),
         str(chaos_dir)],
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        # Wait for the first completed target to reach the journal;
        # the child is then inside the second target's injected hang.
        give_up = time.monotonic() + 120.0
        while time.monotonic() < give_up:
            if (ckpt.exists()
                    and '"kind": "outcome"' in ckpt.read_text()):
                break
            time.sleep(0.05)
        else:
            pytest.fail("child never journaled its first target")
        time.sleep(0.3)  # let the hanging target actually start
        child.send_signal(signal.SIGINT)
        returncode = child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
    assert returncode != 0  # the interrupt aborted the fleet...

    resumed = run_fleet(small_specs(), jobs=1, checkpoint=str(ckpt),
                        resume=True)
    assert resumed.checkpoint_hits >= 1  # ...but its progress survived
    assert resumed.attempts == len(small_specs()) - resumed.checkpoint_hits
    assert resumed.signatures() == clean_baseline.signatures()
    assert resumed.stats.tests == clean_baseline.stats.tests

"""Property tests: resume-after-interruption is invisible in the results.

For any chaos seed and any interruption point, journaling the first
``k`` targets, then resuming the fleet under a seeded fault schedule,
yields exactly the signatures of a fresh unperturbed ``jobs=1`` run.
"""

import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import chaos_schedule, run_fleet

from .conftest import small_specs

COMMON = dict(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])


@settings(**COMMON)
@given(chaos_seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
       interrupted_after=st.integers(min_value=0, max_value=3))
def test_resume_under_chaos_matches_fresh(chaos_seed, interrupted_after,
                                          clean_baseline):
    """Journal ``k`` targets (an interrupted run), chaos-resume the rest."""
    specs = small_specs()
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = f"{tmp}/fleet.ckpt"
        interrupted = run_fleet(specs[:interrupted_after], jobs=1,
                                checkpoint=ckpt)
        assert len(interrupted.outcomes) == interrupted_after
        # Serial resume, so "crash" (os._exit takes pytest down) and
        # "hang" (needs a watchdog, wastes wall clock) stay out; the
        # journal holds no entries for the targets still to run, so
        # "corrupt" would go undetected here - the verify-mode property
        # below owns that fault.
        wrapped = chaos_schedule(chaos_seed, specs, tmp,
                                 faults=("transient",))
        resumed = run_fleet(wrapped, jobs=1, retries=2, checkpoint=ckpt,
                            resume=True, backoff_base=0.0)
        assert resumed.checkpoint_hits == interrupted_after
        assert resumed.signatures() == clean_baseline.signatures()
        assert resumed.stats.tests == clean_baseline.stats.tests


@settings(**COMMON)
@given(chaos_seed=st.integers(min_value=0, max_value=2 ** 32 - 1))
def test_verify_resume_heals_corruption(chaos_seed, clean_baseline):
    """With a full journal, verify-mode resume survives corrupt results."""
    specs = small_specs()
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = f"{tmp}/fleet.ckpt"
        run_fleet(specs, jobs=1, checkpoint=ckpt)
        wrapped = chaos_schedule(chaos_seed, specs, tmp,
                                 faults=("transient", "corrupt"))
        resumed = run_fleet(wrapped, jobs=1, retries=2, checkpoint=ckpt,
                            resume="verify", backoff_base=0.0)
        assert resumed.checkpoint_hits == 0
        assert resumed.signatures() == clean_baseline.signatures()

"""Determinism under injected faults.

The headline invariant of the resilience layer: a fleet perturbed by a
seeded chaos schedule - crashes, hangs, transients, corrupted results -
produces outcomes byte-identical to an unperturbed ``jobs=1`` run,
because recovery only ever re-executes pure functions of the specs'
seeds and ``resume="verify"`` catches the silently wrong results.
"""

import time

import pytest

from repro import obs
from repro.runtime import chaos_schedule, run_fleet, wrap_spec

from .conftest import small_specs

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


@pytest.mark.parametrize("chaos_seed", [1, 2, 3])
def test_seeded_schedule_recovers_identically(chaos_seed, tmp_path,
                                              clean_baseline):
    """Full fault menu under a verifying checkpoint, parallel path."""
    specs = small_specs()
    ckpt = str(tmp_path / "fleet.ckpt")
    run_fleet(specs, jobs=1, checkpoint=ckpt)  # journal to verify against
    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()
    wrapped = chaos_schedule(chaos_seed, specs, str(chaos_dir),
                             hang_s=30.0)
    # A slot-2 fault only fires if slot 1 already failed, so the
    # "something actually happened" guarantee needs a slot-1 fault.
    first_slot = sum(1 for s in wrapped if s.plan and s.plan[0])
    assert first_slot > 0, "schedule injected nothing; pick another seed"
    fleet = run_fleet(wrapped, jobs=2, retries=2, timeout_s=4.0,
                      checkpoint=ckpt, resume="verify",
                      backoff_base=0.01)
    assert fleet.ok
    assert fleet.signatures() == clean_baseline.signatures()
    assert fleet.stats.tests == clean_baseline.stats.tests
    assert fleet.attempts > len(specs)


def test_serial_schedule_recovers_identically(tmp_path, clean_baseline):
    """Serial path: transient faults only (a crash would take pytest
    down with it, and hangs are the serial-deadline tests' job)."""
    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()
    wrapped = chaos_schedule(5, small_specs(), str(chaos_dir),
                             faults=("transient",), fault_rate=1.0)
    fleet = run_fleet(wrapped, jobs=1, retries=2, backoff_base=0.0)
    assert fleet.signatures() == clean_baseline.signatures()
    assert fleet.attempts > 3


def test_hung_worker_killed_within_deadline(tmp_path, clean_baseline):
    """The parallel watchdog kills a hung worker within timeout_s + 1 s.

    Measured from the fleet's own trace: the gap between the hung
    target's ``fleet.submit`` and its ``fleet.timeout`` event.  The
    worker starts executing at submission because the fleet never
    submits more futures than it has workers.
    """
    specs = small_specs()
    hung = specs[1].label()
    specs[1] = wrap_spec(specs[1], ("hang",), str(tmp_path),
                         hang_s=30.0)
    timeout_s = 2.0
    t0 = time.perf_counter()
    with obs.session("chaos-watchdog") as sess:
        fleet = run_fleet(specs, jobs=2, retries=1, timeout_s=timeout_s,
                          backoff_base=0.01)
    elapsed = time.perf_counter() - t0
    events = [r for r in sess.tracer.records if r.get("kind") == "event"]
    submits = [r["t_ns"] for r in events
               if r["name"] == "fleet.submit"
               and r["attrs"]["target"] == hung]
    timeouts = [r["t_ns"] for r in events
                if r["name"] == "fleet.timeout"
                and r["attrs"]["target"] == hung]
    assert timeouts, "watchdog never fired"
    kill_latency = (timeouts[0] - submits[0]) / 1e9
    assert kill_latency <= timeout_s + 1.0
    assert elapsed < 30.0  # the injected hang never ran to completion
    assert fleet.signatures() == clean_baseline.signatures()
    metrics = sess.metrics.to_dict()["counters"]
    assert metrics["proc.fleet.timeouts"] >= 1
    assert metrics["proc.fleet.pool_rebuilds"] >= 1


def test_corruption_caught_by_verify(tmp_path, clean_baseline):
    """A silently corrupted result is detected and healed under
    ``resume="verify"`` - and invisible without it."""
    specs = small_specs()
    ckpt = str(tmp_path / "fleet.ckpt")
    run_fleet(specs, jobs=1, checkpoint=ckpt)
    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()
    wrapped = [wrap_spec(specs[0], ("corrupt",), str(chaos_dir)),
               specs[1], specs[2]]
    with obs.session("chaos-corrupt") as sess:
        fleet = run_fleet(wrapped, jobs=1, retries=1, checkpoint=ckpt,
                          resume="verify", backoff_base=0.0)
    assert fleet.signatures() == clean_baseline.signatures()
    counters = sess.metrics.to_dict()["counters"]
    assert counters["proc.fleet.corrupt_outcomes"] == 1
    assert counters["proc.fleet.verified"] == 3

"""Golden for the degraded-fleet report table.

The table is a pure function of the seeds and the injected fault, so
it is diffed character-for-character.  Regenerate after an intentional
change with:

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/chaos/test_degraded_golden.py
"""

import os
import pathlib

import pytest

from repro.runtime import render_degraded, run_fleet, wrap_spec

from .conftest import small_specs

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "goldens"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDENS"))


def _check(name: str, text: str) -> None:
    path = GOLDEN_DIR / f"{name}.txt"
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing golden {path}; run with REPRO_REGEN_GOLDENS=1")
    assert text == path.read_text(), (
        f"{name} drifted from its golden; if the change is intentional, "
        f"regenerate with REPRO_REGEN_GOLDENS=1")


def test_degraded_report_golden(tmp_path):
    specs = small_specs()
    specs[1] = wrap_spec(specs[1], ("transient",) * 4, str(tmp_path))
    fleet = run_fleet(specs, jobs=1, retries=1, strict=False,
                      backoff_base=0.0)
    assert not fleet.ok
    _check("degraded_report", render_degraded(fleet) + "\n")

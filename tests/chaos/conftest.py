"""Shared fixtures for the chaos suite.

Every test perturbs the same tiny three-vendor fleet (one campaign is
~0.2 s at this geometry) and asserts recovery back to the
session-scoped clean serial baseline.
"""

import pytest

from repro.runtime import CampaignSpec, chip_seed, run_fleet

ROOT_SEED = 13
VENDORS = ("A", "B", "C")
N_ROWS = 32
SAMPLE_SIZE = 200


def small_specs():
    """The chaos suite's canonical fleet (fresh spec objects each call)."""
    return [
        CampaignSpec(experiment="characterize", vendor=v, index=1,
                     build_seed=chip_seed(ROOT_SEED, v, 0, "build"),
                     run_seed=chip_seed(ROOT_SEED, v, 0, "run"),
                     n_rows=N_ROWS, sample_size=SAMPLE_SIZE,
                     run_sweep=False)
        for v in VENDORS
    ]


@pytest.fixture(scope="session")
def clean_baseline():
    """Unperturbed serial run every chaos scenario must reproduce."""
    return run_fleet(small_specs(), jobs=1)

"""Chaos: a corrupted BEER inference must degrade fail-closed.

Both fault kinds - a zeroed syndrome row (caught structurally) and a
single flipped matrix bit (caught only behaviorally, on held-out
probes) - must trip the inference gate.  The campaign then runs
through the distorted lens but every detection is quarantined
``"ecc-unrecovered"`` and the verdicts are capped: corrupted inference
may cost coverage, never produce a wrong definite verdict.
"""

import dataclasses

import pytest

from repro.ecc import (EccCampaignSpec, HammingSecDed,
                       attach_on_die_ecc, infer_ecc,
                       validate_inference)
from repro.dram import vendor
from repro.robust.integrity import EccInferenceError, check_ecc_inference
from repro.runtime import ladder_seed
from repro.runtime.chaos import ECC_FAULT_KINDS, corrupt_inferred_ecc

KW = dict(experiment="characterize", vendor="A", build_seed=7,
          run_seed=2016, n_rows=48, sample_size=500)


@pytest.fixture(scope="module")
def inference():
    code = HammingSecDed.for_vendor("A", 7)
    chip = vendor("A").make_chip(
        seed=ladder_seed(7, "ecc", "probe-chip"), n_rows=48)
    attach_on_die_ecc(chip, code)
    inferred = infer_ecc(chip, seed=ladder_seed(0, "beer", "A"))
    assert inferred.matches(code)
    return chip, inferred


class TestFaultDetection:
    def test_stuck_syndrome_caught_structurally(self, inference):
        _, inferred = inference
        bad = corrupt_inferred_ecc(inferred, "stuck-syndrome", seed=1)
        assert not bad.structurally_valid()

    def test_wrong_matrix_caught_behaviorally(self, inference):
        chip, inferred = inference
        bad = corrupt_inferred_ecc(inferred, "wrong-matrix", seed=1)
        # A single flipped bit keeps the basis full-rank...
        assert bad.structurally_valid()
        # ...so only held-out behavioral validation can catch it.
        report = validate_inference(
            chip, bad, seed=ladder_seed(0, "beer", "validate", "A"))
        assert not report.ok
        assert report.mismatches > 0

    def test_corruption_is_deterministic(self, inference):
        _, inferred = inference
        for kind in ECC_FAULT_KINDS:
            a = corrupt_inferred_ecc(inferred, kind, seed=5)
            b = corrupt_inferred_ecc(inferred, kind, seed=5)
            assert a.basis == b.basis
            assert a.basis != inferred.basis

    def test_unknown_kind_rejected(self, inference):
        _, inferred = inference
        with pytest.raises(ValueError):
            corrupt_inferred_ecc(inferred, "bit-rot", seed=0)


class TestGate:
    def test_strict_gate_raises(self, inference):
        chip, inferred = inference
        bad = corrupt_inferred_ecc(inferred, "wrong-matrix", seed=2)
        report = validate_inference(
            chip, bad, seed=ladder_seed(0, "beer", "validate", "A"))
        with pytest.raises(EccInferenceError):
            check_ecc_inference(report, strict=True)
        assert check_ecc_inference(report, strict=False) is False

    def test_clean_report_passes(self, inference):
        chip, inferred = inference
        report = validate_inference(
            chip, inferred, seed=ladder_seed(0, "beer", "validate", "A"))
        assert check_ecc_inference(report, strict=True) is True


@pytest.mark.parametrize("fault", ECC_FAULT_KINDS)
class TestDegradedCampaign:
    def test_fails_closed_never_wrong(self, fault):
        outcome = EccCampaignSpec(**KW, rounds=2, ecc="recover",
                                  ecc_fault=fault).run()
        verdicts = outcome.result.verdicts
        assert verdicts.degraded
        # No definite verdicts survive a corrupted inference...
        assert verdicts.definite() == set()
        # ...and every lens-view detection is quarantined, visibly.
        assert len(outcome.detected) > 0
        for cell in outcome.detected:
            assert outcome.quarantine.reasons[cell] == "ecc-unrecovered"


def test_fault_requires_recover_mode():
    with pytest.raises(ValueError):
        EccCampaignSpec(**KW, ecc="lens", ecc_fault="wrong-matrix")
    with pytest.raises(ValueError):
        EccCampaignSpec(**KW, ecc="recover", ecc_fault="bad-kind")

"""Substrate chaos: the robustness invariant, end to end.

PR 3's chaos suite perturbed the *process* (crashes, hangs); this one
perturbs the *device*.  Seeded device-noise schedules inject VRT cells,
marginal cells, and soft errors into every bank, and the repeat-and-vote
layer must hold three invariants under any such schedule:

1. the ``definite`` cell set is byte-identical to the noise-free run -
   injected noise can add observations but never forge a stable
   data-dependent failure;
2. every injected cell that the campaign observed ends in the
   quarantine, never in the trusted profile;
3. DC-REF bins guardbanded with that quarantine under-refresh zero
   truly-failing rows (clean definite rows plus every injected cell's
   row).
"""

import pytest

from repro.dcref import guardbanded_bins, under_refresh_report
from repro.dram.faults import NoiseSpec
from repro.runtime import CampaignSpec, chip_seed, run_fleet
from repro.runtime.chaos import device_noise_schedule

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

ROOT_SEED = 13
VENDORS = ("A", "B", "C")
N_ROWS = 32
N_BANKS = 8
ROUNDS = 3

NOISE = NoiseSpec(n_vrt_cells=3, vrt_fail_prob=1.0,
                  n_marginal_cells=3, marginal_fail_prob=0.8,
                  soft_error_rate=1e-6)


def robust_specs():
    return [
        CampaignSpec(experiment="characterize", vendor=v, index=1,
                     build_seed=chip_seed(ROOT_SEED, v, 0, "build"),
                     run_seed=chip_seed(ROOT_SEED, v, 0, "run"),
                     n_rows=N_ROWS, sample_size=200, run_sweep=True,
                     rounds=ROUNDS)
        for v in VENDORS
    ]


@pytest.fixture(scope="module")
def noise_free():
    """The noise-free robust profile every schedule must reproduce."""
    return run_fleet(robust_specs(), jobs=1)


@pytest.mark.parametrize("noise_seed", [1, 2, 3])
def test_noise_schedule_preserves_definite_profile(noise_seed,
                                                   noise_free):
    wrapped = device_noise_schedule(noise_seed, robust_specs(), NOISE)
    noisy = run_fleet(wrapped, jobs=2)
    assert noisy.ok
    for clean_o, noisy_o, spec in zip(noise_free.outcomes,
                                      noisy.outcomes, wrapped):
        injected = spec.injected_cells()
        assert injected, "schedule injected nothing; pick another seed"

        # (1) definite sets byte-identical to the noise-free run.
        clean_definite = clean_o.result.verdicts.definite()
        assert noisy_o.result.verdicts.definite() == clean_definite

        # (2) every injected cell is quarantined, none is trusted.
        quarantine = noisy_o.quarantine
        assert all(cell in quarantine for cell in injected)
        assert not injected & noisy_o.result.verdicts.detected()

        # (3) guardbanded DC-REF bins never under-refresh a truly
        # failing row.
        bins = guardbanded_bins(noisy_o.detected, quarantine,
                                1, N_BANKS, N_ROWS)
        truth = {(c, b, r)
                 for (c, b, r, _col) in clean_definite | injected}
        report = under_refresh_report(bins, truth)
        assert report.ok, (
            f"{spec.label()}: under-refreshed {report.under_refreshed}")


def test_mid_campaign_noise_strike(noise_free):
    """Noise arming mid-campaign (``active_after``) changes nothing:
    the later the strike, the less it can even be observed, and the
    definite profile stays byte-identical either way."""
    late = NoiseSpec(n_vrt_cells=3, vrt_fail_prob=1.0,
                     n_marginal_cells=3, marginal_fail_prob=0.8,
                     active_after=10)
    wrapped = device_noise_schedule(2, robust_specs(), late)
    noisy = run_fleet(wrapped, jobs=2)
    for clean_o, noisy_o in zip(noise_free.outcomes, noisy.outcomes):
        assert (noisy_o.result.verdicts.definite()
                == clean_o.result.verdicts.definite())
        # Anything the strike did surface is quarantined or voted
        # down - never a new definite cell.
        assert noisy_o.quarantine is not None


def test_noise_free_wrapper_is_identity(noise_free):
    """A schedule with an empty population spec is a no-op wrapper."""
    wrapped = device_noise_schedule(1, robust_specs(), NoiseSpec())
    fleet = run_fleet(wrapped, jobs=2)
    assert fleet.signatures() == noise_free.signatures()

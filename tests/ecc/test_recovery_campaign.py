"""Campaign-level acceptance: the recovered profile IS the raw truth.

``ecc="recover"`` campaigns must match the ECC-off ground truth
byte-for-byte - detected set, distances, test counts, verdicts - on
both the legacy single-pass path and the robust repeat-and-vote path,
while ``ecc="lens"`` visibly distorts the profile.
"""

import pytest

from repro.ecc import EccCampaignSpec, ecc_distortion, format_distortion
from repro.runtime import CampaignSpec

KW = dict(experiment="characterize", vendor="A", build_seed=7,
          run_seed=2016, n_rows=48, sample_size=500)


@pytest.fixture(scope="module")
def base_legacy():
    return CampaignSpec(**KW, run_sweep=True).run()


@pytest.fixture(scope="module")
def base_robust():
    return CampaignSpec(**KW, rounds=2).run()


class TestRecoverEqualsTruth:
    def test_legacy_payload_byte_identical(self, base_legacy):
        rec = EccCampaignSpec(**KW, run_sweep=True, ecc="recover").run()
        # Labels differ by the "+ecc-recover" suffix; every
        # result-bearing field must be byte-identical.
        assert rec.signature()[1:] == base_legacy.signature()[1:]
        assert set(rec.detected) == set(base_legacy.detected)
        assert rec.distances == base_legacy.distances

    def test_robust_payload_byte_identical(self, base_robust):
        rec = EccCampaignSpec(**KW, rounds=2, ecc="recover").run()
        assert rec.signature()[1:] == base_robust.signature()[1:]
        assert (rec.result.verdicts.definite()
                == base_robust.result.verdicts.definite())
        assert not rec.result.verdicts.degraded
        assert (rec.quarantine.signature()
                == base_robust.quarantine.signature())

    def test_recover_distortion_is_zero(self, base_legacy):
        rec = EccCampaignSpec(**KW, run_sweep=True, ecc="recover").run()
        dist = ecc_distortion(base_legacy, rec)
        assert dist.hidden == 0
        assert dist.spurious == 0


class TestLensDistorts:
    def test_lens_hides_failures(self, base_legacy):
        lens = EccCampaignSpec(**KW, run_sweep=True, ecc="lens").run()
        dist = ecc_distortion(base_legacy, lens)
        assert dist.base_detected > 0
        # Single-bit data-dependent failures dominate; the lens must
        # hide a large majority of the raw profile.
        assert dist.hidden_fraction > 0.5
        table = format_distortion(dist, base_legacy.spec.label(),
                                  lens.spec.label())
        assert "hidden by ECC" in table

    def test_lens_label_and_key_distinct(self, base_legacy):
        lens = EccCampaignSpec(**KW, run_sweep=True, ecc="lens")
        clean = CampaignSpec(**KW, run_sweep=True)
        assert lens.label() == clean.label() + "+ecc"
        assert lens.checkpoint_key() != clean.checkpoint_key()

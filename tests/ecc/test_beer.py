"""BEER-style inference of the secret on-die parity-check matrix.

The acceptance bar: the inferred basis spans *exactly* the injected
code's rowspace for every vendor x build-seed cell, and the held-out
behavioral validation passes with zero mismatches.
"""

import dataclasses

import pytest

from repro.ecc import (HammingSecDed, InferredEcc, attach_on_die_ecc,
                       beer_backgrounds, infer_ecc, validate_inference)
from repro.dram import vendor
from repro.runtime import ladder_seed

N_ROWS = 64


def _probe_chip(v, seed):
    code = HammingSecDed.for_vendor(v, seed)
    chip = vendor(v).make_chip(
        seed=ladder_seed(seed, "ecc", "probe-chip"), n_rows=N_ROWS)
    attach_on_die_ecc(chip, code)
    return chip, code


@pytest.mark.parametrize("v", ["A", "B", "C"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_inference_recovers_exact_matrix(v, seed):
    chip, code = _probe_chip(v, seed)
    inferred = infer_ecc(chip, seed=ladder_seed(seed, "beer", v))
    assert inferred.ok
    assert inferred.structurally_valid()
    assert inferred.matches(code), (
        f"recovered rowspace differs from the injected code "
        f"({v}/{seed})")
    report = validate_inference(
        chip, inferred, seed=ladder_seed(seed, "beer", "validate", v))
    assert report.ok
    assert report.mismatches == 0
    assert report.checked >= 16


def test_backgrounds_cover_both_polarities():
    patterns = beer_backgrounds(8192, N_ROWS)
    assert len(patterns) >= 2
    names = [name for name, _ in patterns]
    assert len(set(names)) == len(names)


def test_inference_requires_lens_stage():
    chip = vendor("A").make_chip(seed=0, n_rows=N_ROWS)
    with pytest.raises(ValueError):
        infer_ecc(chip, seed=0)


def test_corrupted_basis_fails_validation():
    chip, code = _probe_chip("A", 0)
    inferred = infer_ecc(chip, seed=ladder_seed(0, "beer", "A"))
    basis = list(inferred.basis)
    basis[0] ^= 1 << 17
    wrong = dataclasses.replace(inferred, basis=tuple(basis))
    report = validate_inference(
        chip, wrong, seed=ladder_seed(0, "beer", "validate", "A"))
    assert not report.ok


def test_rank_deficient_basis_structurally_invalid():
    assert not InferredEcc(basis=()).structurally_valid()
    assert not InferredEcc(basis=(0,) * 8).structurally_valid()

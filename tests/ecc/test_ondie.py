"""The on-die ECC read-path stage: lens, recovery, and null modes."""

import numpy as np
import pytest

from repro.ecc import (COMPANION_PASSES, HammingSecDed, InferredEcc,
                       OnDieEcc, attach_on_die_ecc)
from repro.ecc.beer import _rref

CODE = HammingSecDed.for_vendor("A", 0)


def _recovery_for(code):
    """An exact recovery object: the true rowspace in canonical form."""
    basis, _ = _rref(int(m) for m in code.row_masks)
    return InferredEcc(basis=basis)


def _cells(rows, phys):
    return set(zip(rows.tolist(), phys.tolist()))


def _arr(values):
    return np.array(values, dtype=np.int64)


class TestLens:
    def test_single_bit_masked(self):
        ecc = OnDieEcc(CODE)
        rows, phys = ecc.transform(_arr([3]), _arr([70]), 8192)
        assert len(rows) == 0
        assert ecc.counts["masked"] == 1
        assert ecc.counts["corrected_words"] == 1

    def test_double_bit_detected_visible(self):
        ecc = OnDieEcc(CODE)
        rows, phys = ecc.transform(_arr([3, 3]), _arr([70, 100]), 8192)
        assert _cells(rows, phys) == {(3, 70), (3, 100)}
        assert ecc.counts["detected_words"] == 1

    def test_miscorrection_fabricates_cell(self):
        # Find a miscorrecting triple, then check the stage reports
        # the fabricated cell as a real observation.
        rng = np.random.default_rng(5)
        for _ in range(500):
            triple = sorted(rng.choice(64, size=3, replace=False)
                            .tolist())
            observed, status = CODE.decode_error_set(frozenset(triple))
            if status == 5:  # MISCORRECTED
                rows, phys = OnDieEcc(CODE).transform(
                    _arr([0] * 3), _arr(triple), 8192)
                assert _cells(rows, phys) == {(0, p) for p in observed}
                extra = observed - frozenset(triple)
                assert len(extra) == 1
                return
        pytest.fail("no miscorrecting triple found")

    def test_words_are_independent(self):
        # One error in word 0, one in word 1: both masked separately.
        ecc = OnDieEcc(CODE)
        rows, phys = ecc.transform(_arr([0, 0]), _arr([5, 70]), 8192)
        assert len(rows) == 0
        assert ecc.counts["words"] == 2

    def test_row_bits_must_be_word_aligned(self):
        with pytest.raises(ValueError):
            OnDieEcc(CODE).transform(_arr([0]), _arr([1]), 100)


class TestNullCode:
    def test_null_is_identity(self):
        ecc = OnDieEcc(None)
        rows, phys = _arr([1, 1, 2]), _arr([5, 5, 9])
        noise_r, noise_p = _arr([4]), _arr([8])
        out = ecc.transform_read(rows, phys, noise_r, noise_p, 8192)
        assert out[0] is rows and out[1] is phys
        assert out[2] is noise_r and out[3] is noise_p
        assert ecc.counts["words"] == 0


class TestRecovery:
    def test_exact_inversion_random_sets(self):
        """Random error sets up to 3 errors invert exactly."""
        ecc = OnDieEcc(CODE, recovery=_recovery_for(CODE))
        rng = np.random.default_rng(13)
        for _ in range(300):
            k = int(rng.integers(1, 4))
            errs = frozenset(rng.choice(64, size=k, replace=False)
                             .tolist())
            reals, unsure = ecc._recover_word(errs)
            # Never a wrong claim; missed cells go to the unsure set.
            assert reals <= errs
            assert errs - reals <= unsure

    def test_single_and_double_always_exact(self):
        ecc = OnDieEcc(CODE, recovery=_recovery_for(CODE))
        for errs in ({5}, {0}, {1}, {0, 1}, {5, 60}, {1, 33}):
            reals, unsure = ecc._recover_word(frozenset(errs))
            assert reals == errs and not unsure

    def test_event_stream_preserved_verbatim(self):
        """Exactly recovered words pass raw events through untouched -
        order, duplicates and the event/noise split included."""
        ecc = OnDieEcc(CODE, recovery=_recovery_for(CODE))
        rows = _arr([7, 2, 7, 7])
        phys = _arr([130, 5, 128, 130])   # duplicate (7, 130) events
        noise_r, noise_p = _arr([2]), _arr([9])
        o_rows, o_phys, on_r, on_p = ecc.transform_read(
            rows, phys, noise_r, noise_p, 8192)
        assert np.array_equal(o_rows, rows)
        assert np.array_equal(o_phys, phys)
        assert np.array_equal(on_r, noise_r)
        assert np.array_equal(on_p, noise_p)
        assert ecc.counts["recovered_words"] == 2
        assert not ecc.ambiguous

    def test_unrecoverable_word_surrendered(self):
        """A word the inversion cannot pin down yields no claimed
        cells it isn't sure of - they land in ``ambiguous``."""
        ecc = OnDieEcc(CODE, recovery=_recovery_for(CODE))
        rng = np.random.default_rng(3)
        surrendered = None
        for _ in range(3000):
            errs = frozenset(rng.choice(64, size=4, replace=False)
                             .tolist())
            reals, unsure = ecc._recover_word(errs)
            if unsure:
                surrendered = (errs, reals, unsure)
                break
        if surrendered is None:
            pytest.skip("no ambiguous 4-error word for this code")
        errs, reals, unsure = surrendered
        word_base = 3 * 64
        rows = np.full(len(errs), 9, dtype=np.int64)
        phys = _arr([word_base + p for p in sorted(errs)])
        empty = np.empty(0, dtype=np.int64)
        o_rows, o_phys, _, _ = ecc.transform_read(
            rows, phys, empty, empty, 8192)
        assert _cells(o_rows, o_phys) == {(9, word_base + p)
                                          for p in reals}
        assert ecc.ambiguous == {(9, word_base + p) for p in unsure}

    def test_companion_passes_fixed(self):
        assert COMPANION_PASSES == (frozenset(), frozenset({0}),
                                    frozenset({1}))


class TestAttach:
    def test_attach_covers_every_bank(self):
        from repro.dram import vendor
        chip = vendor("A").make_chip(seed=0, n_rows=16)
        attach_on_die_ecc(chip, CODE)
        assert all(isinstance(b.ecc, OnDieEcc) for b in chip.banks)
        assert all(b.ecc.code is CODE for b in chip.banks)

"""Differential gate: threading the ECC stage itself changes nothing.

A campaign run with the *null code* attached exercises the full ECC
read-path plumbing (stage attached, bank dispatch, detector drain) but
must be byte-identical to the stage-less campaign - same label, same
checkpoint key, same full outcome signature.  This pins the plumbing
so lens/recover differences are attributable to the code alone.
"""

from repro.ecc import EccCampaignSpec, OnDieEcc
from repro.runtime import CampaignSpec

KW = dict(experiment="characterize", vendor="B", build_seed=3,
          run_seed=99, n_rows=48, sample_size=500, run_sweep=True)


def test_null_code_signature_byte_identical():
    base = CampaignSpec(**KW).run()
    null = EccCampaignSpec(**KW, ecc="null").run()
    assert null.spec.label() == base.spec.label()
    assert null.signature() == base.signature()


def test_null_checkpoint_key_unchanged():
    assert (EccCampaignSpec(**KW, ecc="null").checkpoint_key()
            == CampaignSpec(**KW).checkpoint_key())


def test_null_robust_path_identical():
    kw = dict(KW)
    kw.pop("run_sweep")
    base = CampaignSpec(**kw, rounds=2).run()
    null = EccCampaignSpec(**kw, rounds=2, ecc="null").run()
    assert null.signature() == base.signature()


def test_null_stage_attached_but_inert():
    spec = EccCampaignSpec(**KW, ecc="null")
    assert spec.code() is None
    chips = [type("C", (), {})()]  # not used by the null path

    class FakeBank:
        ecc = None
    fake = type("Chip", (), {"banks": [FakeBank()]})()
    spec._prepare_chips([fake])
    assert isinstance(fake.banks[0].ecc, OnDieEcc)
    assert fake.banks[0].ecc.code is None

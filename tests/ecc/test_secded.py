"""Bit-exactness of the (72, 64) SEC-DED code.

These are the hypothesis tests backing the mitigation classifier's
three bands: every single-bit error corrects, every double-bit error
detects without correction, and miscorrections arise only at three or
more simultaneous errors.  The packed word-wise path is also pinned
byte-identical to the independent column-by-column reference path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc import (CLEAN, CORRECTED, CORRECTED_CHECK, DETECTED,
                       MISCORRECTED, UNDETECTED, HammingSecDed)

CODES = {
    "standard": HammingSecDed.standard(),
    "A": HammingSecDed.for_vendor("A", 0),
    "B": HammingSecDed.for_vendor("B", 0),
    "C": HammingSecDed.for_vendor("C", 0),
}

words_strategy = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1), min_size=1,
    max_size=16).map(lambda ws: np.array(ws, dtype=np.uint64))


class TestConstruction:
    def test_columns_distinct_with_parity_row(self):
        for code in CODES.values():
            cols = code.data_columns + code.check_columns
            assert len(set(cols)) == 72
            # Every H column participates in the overall-parity row,
            # so a double-bit error's syndrome has that bit clear and
            # can never alias a column - the DED guarantee.
            assert all(c & 0x80 for c in cols)

    def test_vendor_codes_distinct(self):
        seen = {CODES[k].data_columns for k in ("A", "B", "C")}
        assert len(seen) == 3
        # Deterministic per (vendor, build).
        assert (HammingSecDed.for_vendor("A", 0).data_columns
                == CODES["A"].data_columns)
        assert (HammingSecDed.for_vendor("A", 1).data_columns
                != CODES["A"].data_columns)

    def test_bad_columns_rejected(self):
        good = HammingSecDed.standard().data_columns
        with pytest.raises(ValueError):
            HammingSecDed(good[:63] + (good[0],))   # duplicate
        with pytest.raises(ValueError):
            HammingSecDed(good[:63] + (0x01,))      # parity bit unset


class TestRoundTrip:
    @given(words=words_strategy)
    @settings(max_examples=50, deadline=None)
    def test_decode_encode_identity(self, words):
        """decode(encode(w)) is the identity with CLEAN status."""
        code = CODES["A"]
        checks = code.encode_words(words)
        out, status = code.decode_words(words, checks)
        assert np.array_equal(out, words)
        assert (status == CLEAN).all()

    @given(words=words_strategy)
    @settings(max_examples=50, deadline=None)
    def test_packed_matches_reference(self, words):
        """The packed path is byte-identical to the reference path."""
        code = CODES["B"]
        bits = ((words[:, None] >> np.arange(64, dtype=np.uint64))
                & np.uint64(1)).astype(np.uint8)
        assert np.array_equal(code.encode_words(words),
                              code.encode_ref(bits))
        checks = code.encode_words(words)
        out_w, st_w = code.decode_words(words, checks)
        out_b, st_b = code.decode_ref(bits, checks)
        packed_ref = (out_b.astype(np.uint64)
                      << np.arange(64, dtype=np.uint64)).sum(axis=1)
        assert np.array_equal(out_w, packed_ref)
        assert np.array_equal(st_w, st_b)

    @given(words=words_strategy,
           bit=st.integers(min_value=0, max_value=63))
    @settings(max_examples=50, deadline=None)
    def test_single_bit_corrected(self, words, bit):
        code = CODES["C"]
        checks = code.encode_words(words)
        corrupted = words ^ (np.uint64(1) << np.uint64(bit))
        out, status = code.decode_words(corrupted, checks)
        assert np.array_equal(out, words)
        assert (status == CORRECTED).all()

    @given(words=words_strategy,
           bits=st.sets(st.integers(min_value=0, max_value=63),
                        min_size=2, max_size=2))
    @settings(max_examples=50, deadline=None)
    def test_double_bit_detected_not_corrected(self, words, bits):
        code = CODES["A"]
        checks = code.encode_words(words)
        corrupted = words.copy()
        for b in bits:
            corrupted ^= np.uint64(1) << np.uint64(b)
        out, status = code.decode_words(corrupted, checks)
        assert (status == DETECTED).all()
        # Detected-not-corrected: the decoder must not touch the data.
        assert np.array_equal(out, corrupted)


class TestErrorSets:
    def test_single_error_set_corrected(self):
        code = CODES["A"]
        for p in range(64):
            observed, status = code.decode_error_set(frozenset({p}))
            assert status == CORRECTED
            assert observed == frozenset()

    def test_double_error_set_detected(self):
        code = CODES["A"]
        errs = frozenset({3, 41})
        observed, status = code.decode_error_set(errs)
        assert status == DETECTED
        assert observed == errs

    def test_miscorrection_needs_three_errors(self):
        """Sweep all pairs: no double-bit pattern ever miscorrects,
        and some triple does (the BEER signal exists)."""
        code = CODES["A"]
        for i in range(0, 64, 7):
            for j in range(i + 1, 64, 5):
                _, status = code.decode_error_set(frozenset({i, j}))
                assert status == DETECTED
        seen = set()
        rng = np.random.default_rng(7)
        for _ in range(200):
            triple = frozenset(
                rng.choice(64, size=3, replace=False).tolist())
            _, status = code.decode_error_set(triple)
            assert status in (DETECTED, MISCORRECTED, CORRECTED_CHECK,
                              UNDETECTED)
            seen.add(status)
        assert MISCORRECTED in seen

    def test_miscorrection_flips_healthy_bit(self):
        code = CODES["A"]
        rng = np.random.default_rng(11)
        for _ in range(500):
            triple = frozenset(
                rng.choice(64, size=3, replace=False).tolist())
            observed, status = code.decode_error_set(triple)
            if status == MISCORRECTED:
                extra = observed - triple
                assert len(extra) == 1 and triple < observed
                return
        pytest.fail("no miscorrecting triple found in 500 draws")

"""High-level experiment drivers (scaled-down smoke versions)."""

import pytest

from repro.analysis import (CoverageSplit, ModuleComparison,
                            compare_module, ranking_histogram,
                            recursion_for_vendor, sample_size_sweep)
from repro.dram import make_module


class TestRecursionDriver:
    def test_vendor_b_matches_paper(self):
        result = recursion_for_vendor("B", seed=11, n_rows=96,
                                      sample_size=1500)
        assert result.recursion.tests_per_level == [2, 8, 8, 24, 24]
        assert result.magnitudes() == [1, 64]


class TestModuleComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        module = make_module("A", 1, seed=5, n_rows=64, n_chips=2)
        comp, _result = compare_module(module, seed=9)
        return comp

    def test_parbor_beats_random(self, comparison):
        assert comparison.extra_failures > 0
        assert comparison.extra_percent > 0

    def test_split_consistency(self, comparison):
        assert comparison.parbor_failures == (comparison.parbor_only
                                              + comparison.both)
        assert comparison.random_failures == (comparison.random_only
                                              + comparison.both)

    def test_coverage_split_sums_to_one(self, comparison):
        split = CoverageSplit.from_comparison(comparison)
        total = split.only_parbor + split.only_random + split.both
        assert total == pytest.approx(1.0)
        assert split.only_random < 0.1

    def test_zero_division_guard(self):
        empty = ModuleComparison("x", 0, 0, 0, 0, 0, 0)
        assert empty.extra_percent == 0.0
        assert CoverageSplit.from_comparison(empty).both == 0.0


class TestRankingDrivers:
    def test_level4_histogram_peaks_at_true_regions(self):
        hist = ranking_histogram("A", level=4, seed=21, n_rows=96,
                                 sample_size=1500)
        # Figure 14 A: distances +-1, +-2, +-6 are the frequent ones.
        top = {d for d, v in hist.items() if v > 0.25}
        assert top <= {-1, 1, -2, 2, -6, 6}
        assert {-1, 1} <= top

    def test_unreached_level_rejected(self):
        with pytest.raises(ValueError):
            ranking_histogram("A", level=9, seed=1, n_rows=64,
                              sample_size=200)

    def test_sample_size_sweep_shapes(self):
        sweep = sample_size_sweep("B", sample_sizes=(100, 800),
                                  seed=3, n_rows=96)
        assert set(sweep) == {100, 800}
        # Larger samples see at least as many distinct distances.
        assert len(sweep[800]) >= len(sweep[100]) - 2

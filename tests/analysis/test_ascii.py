"""ASCII chart rendering."""

from repro.analysis import grouped_hbar_chart, hbar_chart


class TestHbar:
    def test_scales_to_peak(self):
        out = hbar_chart({"a": 10, "b": 5}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        out = hbar_chart({"long-label": 1, "x": 1})
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_title_and_format(self):
        out = hbar_chart({"a": 1.234}, title="T", fmt="{:.2f}")
        assert out.splitlines()[0] == "T"
        assert "1.23" in out

    def test_empty(self):
        assert hbar_chart({}) == ""
        assert hbar_chart({}, title="T") == "T"

    def test_negative_values_clamped(self):
        out = hbar_chart({"neg": -5, "pos": 5}, width=10)
        assert out.splitlines()[0].count("#") == 0


class TestGrouped:
    def test_shared_scale(self):
        out = grouped_hbar_chart({"g1": {"a": 10}, "g2": {"a": 5}},
                                 width=10)
        lines = [ln for ln in out.splitlines() if "#" in ln]
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_group_headers(self):
        out = grouped_hbar_chart({"g1": {"a": 1}})
        assert out.splitlines()[0] == "g1:"

    def test_empty(self):
        assert grouped_hbar_chart({}) == ""

"""Report formatting."""

from repro.analysis import format_distance_set, format_percent, format_table


class TestDistanceSet:
    def test_symmetric_pairs_collapse(self):
        assert format_distance_set([-8, 8, -16, 16]) == "{+-8, +-16}"

    def test_lone_signs_kept(self):
        assert format_distance_set([-48, 8, -8]) == "{+-8, -48}"
        assert format_distance_set([5]) == "{+5}"

    def test_zero(self):
        assert format_distance_set([0]) == "{0}"

    def test_empty(self):
        assert format_distance_set([]) == "{}"


class TestPercent:
    def test_formatting(self):
        assert format_percent(0.219) == "21.9%"
        assert format_percent(0.5, digits=0) == "50%"


class TestTable:
    def test_alignment_and_separator(self):
        out = format_table(["col", "x"], [["a", 1], ["bbbb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("col")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4
        # Columns align: "x" header starts where values start.
        assert lines[0].index("x") == lines[2].index("1")

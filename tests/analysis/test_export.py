"""Machine-readable exporters."""

import csv
import io
import json

from repro.analysis import (ModuleComparison, campaign_to_json,
                            comparisons_to_csv, comparisons_to_json,
                            ranking_to_csv)
from repro.core import ParborConfig, run_parbor
from repro.dram import vendor


def sample_comparison():
    return ModuleComparison(module_id="A1", budget=142,
                            parbor_failures=900, random_failures=800,
                            parbor_only=150, random_only=50, both=750)


class TestComparisonExport:
    def test_csv_roundtrip(self):
        buf = io.StringIO()
        comparisons_to_csv([sample_comparison()], buf)
        rows = list(csv.DictReader(io.StringIO(buf.getvalue())))
        assert rows[0]["module"] == "A1"
        assert int(rows[0]["extra_failures"]) == 100
        assert float(rows[0]["extra_percent"]) == 12.5

    def test_json_includes_coverage_split(self):
        buf = io.StringIO()
        comparisons_to_json([sample_comparison()], buf)
        payload = json.loads(buf.getvalue())
        assert payload[0]["module"] == "A1"
        total = (payload[0]["only_parbor"] + payload[0]["only_random"]
                 + payload[0]["both"])
        assert abs(total - 1.0) < 1e-3


class TestCampaignExport:
    def test_full_campaign_serialises(self):
        chip = vendor("B").make_chip(seed=3, n_rows=64)
        result = run_parbor(chip, ParborConfig(sample_size=500), seed=1)
        buf = io.StringIO()
        campaign_to_json(result, buf)
        payload = json.loads(buf.getvalue())
        assert payload["magnitudes"] == [1, 64]
        assert payload["budget"]["total"] == result.total_tests
        assert len(payload["levels"]) == 5
        assert "recovery" not in payload

    def test_recovery_block_present_when_requested(self):
        chip = vendor("B").make_chip(seed=13, n_rows=64)
        result = run_parbor(chip, ParborConfig(sample_size=500), seed=4,
                            recover_remapped=True)
        buf = io.StringIO()
        campaign_to_json(result, buf)
        payload = json.loads(buf.getvalue())
        assert "recovery" in payload
        assert payload["recovery"]["attempted"] \
            == result.recovery.attempted


class TestRankingExport:
    def test_csv_grid(self):
        hists = {100: {0: 1.0, 5: 0.4}, 500: {0: 1.0, -1: 0.2}}
        buf = io.StringIO()
        ranking_to_csv(hists, buf)
        rows = list(csv.reader(io.StringIO(buf.getvalue())))
        assert rows[0] == ["distance", "n_100", "n_500"]
        by_distance = {int(r[0]): r[1:] for r in rows[1:]}
        assert by_distance[5] == ["0.4", "0.0"]
        assert by_distance[-1] == ["0.0", "0.2"]
